//! Store statistics: per-predicate histograms and predicate-pair
//! cardinalities (§4.3's "corrective step").

use parj_dict::Id;
use parj_store::{SortOrder, TripleStore};

use crate::histogram::EquiDepthHistogram;

/// Default number of histogram buckets per column.
pub const DEFAULT_BUCKETS: usize = 64;
/// Pair cardinalities are computed only up to this many predicates
/// (quadratic storage); real RDF schemas are far below it (LUBM: 17,
/// WatDiv: dozens).
pub const MAX_PAIR_PREDICATES: usize = 512;

/// Per-predicate statistics.
#[derive(Debug, Clone)]
pub struct PredStats {
    /// Distinct triples with this predicate.
    pub triples: u64,
    /// Distinct subjects.
    pub distinct_subjects: u64,
    /// Distinct objects.
    pub distinct_objects: u64,
    /// Equi-depth histogram over the subject column.
    pub subject_hist: EquiDepthHistogram,
    /// Equi-depth histogram over the object column.
    pub object_hist: EquiDepthHistogram,
}

/// Intersection cardinalities between the key sets of two predicates:
/// how many distinct resources appear in column X of `a` *and* column Y
/// of `b`. These drive join-selectivity estimates: for a join
/// `?v` ∈ subjects(a) ⋈ subjects(b), the match probability of a probe is
/// `ss / |subjects(a)|`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PairCard {
    /// `|S_a ∩ S_b|`.
    pub ss: u64,
    /// `|S_a ∩ O_b|`.
    pub so: u64,
    /// `|O_a ∩ S_b|`.
    pub os: u64,
    /// `|O_a ∩ O_b|`.
    pub oo: u64,
}

/// All optimizer statistics for one store.
#[derive(Debug, Clone)]
pub struct Stats {
    preds: Vec<PredStats>,
    /// Row-major `preds × preds` matrix; empty if the predicate count
    /// exceeded [`MAX_PAIR_PREDICATES`].
    pairs: Vec<PairCard>,
}

/// Sorted-set intersection size (both inputs strictly increasing).
fn intersection_size(a: &[Id], b: &[Id]) -> u64 {
    let mut i = 0;
    let mut j = 0;
    let mut n = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

impl Stats {
    /// Scans the store once and builds all statistics. Runs at load
    /// time, like the paper's precomputation.
    pub fn build(store: &TripleStore) -> Self {
        Self::build_with_buckets(store, DEFAULT_BUCKETS)
    }

    /// [`Stats::build`] with an explicit histogram resolution.
    pub fn build_with_buckets(store: &TripleStore, buckets: usize) -> Self {
        let preds: Vec<PredStats> = store
            .partitions()
            .iter()
            .map(|part| {
                let so = part.replica(SortOrder::SO);
                let os = part.replica(SortOrder::OS);
                let subj_groups: Vec<(Id, u64)> = (0..so.num_keys())
                    .map(|i| (so.key_at(i), so.group_len(i) as u64))
                    .collect();
                let obj_groups: Vec<(Id, u64)> = (0..os.num_keys())
                    .map(|i| (os.key_at(i), os.group_len(i) as u64))
                    .collect();
                PredStats {
                    triples: so.num_triples() as u64,
                    distinct_subjects: so.num_keys() as u64,
                    distinct_objects: os.num_keys() as u64,
                    subject_hist: EquiDepthHistogram::build(subj_groups, buckets),
                    object_hist: EquiDepthHistogram::build(obj_groups, buckets),
                }
            })
            .collect();

        let n = preds.len();
        let pairs = if n <= MAX_PAIR_PREDICATES {
            let mut pairs = vec![PairCard::default(); n * n];
            for a in 0..n {
                let sa = store.replica(a as Id, SortOrder::SO).expect("dense").keys();
                let oa = store.replica(a as Id, SortOrder::OS).expect("dense").keys();
                for b in a..n {
                    let sb = store.replica(b as Id, SortOrder::SO).expect("dense").keys();
                    let ob = store.replica(b as Id, SortOrder::OS).expect("dense").keys();
                    let card = PairCard {
                        ss: intersection_size(sa, sb),
                        so: intersection_size(sa, ob),
                        os: intersection_size(oa, sb),
                        oo: intersection_size(oa, ob),
                    };
                    pairs[a * n + b] = card;
                    // Mirror with S/O roles swapped.
                    pairs[b * n + a] = PairCard {
                        ss: card.ss,
                        so: card.os,
                        os: card.so,
                        oo: card.oo,
                    };
                }
            }
            pairs
        } else {
            Vec::new()
        };
        Stats { preds, pairs }
    }

    /// Per-predicate statistics, or `None` for an out-of-range id.
    pub fn pred(&self, predicate: Id) -> Option<&PredStats> {
        self.preds.get(predicate as usize)
    }

    /// Pair cardinalities for `(a, b)`, if computed.
    pub fn pair(&self, a: Id, b: Id) -> Option<PairCard> {
        let n = self.preds.len();
        if self.pairs.is_empty() {
            return None;
        }
        let (a, b) = (a as usize, b as usize);
        if a < n && b < n {
            Some(self.pairs[a * n + b])
        } else {
            None
        }
    }

    /// Number of predicates covered.
    pub fn num_predicates(&self) -> usize {
        self.preds.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parj_dict::Term;
    use parj_store::StoreBuilder;

    fn store() -> TripleStore {
        let mut b = StoreBuilder::new();
        // p0: 1->a, 2->a, 3->b   p1: 2->x, 3->x, 9->y
        for (s, p, o) in [
            ("r1", "p0", "a"),
            ("r2", "p0", "a"),
            ("r3", "p0", "b"),
            ("r2", "p1", "x"),
            ("r3", "p1", "x"),
            ("r9", "p1", "y"),
        ] {
            b.add_term_triple(&Term::iri(s), &Term::iri(p), &Term::iri(o));
        }
        b.build()
    }

    #[test]
    fn per_pred_counts() {
        let s = store();
        let stats = Stats::build(&s);
        let p0 = s.dict().predicate_id(&Term::iri("p0")).unwrap();
        let ps = stats.pred(p0).unwrap();
        assert_eq!(ps.triples, 3);
        assert_eq!(ps.distinct_subjects, 3);
        assert_eq!(ps.distinct_objects, 2);
        let a = s.dict().resource_id(&Term::iri("a")).unwrap();
        assert!((ps.object_hist.estimate_freq(a) - 2.0).abs() < 1.01);
    }

    #[test]
    fn pair_intersections() {
        let s = store();
        let stats = Stats::build(&s);
        let p0 = s.dict().predicate_id(&Term::iri("p0")).unwrap();
        let p1 = s.dict().predicate_id(&Term::iri("p1")).unwrap();
        let card = stats.pair(p0, p1).unwrap();
        // subjects(p0) = {r1,r2,r3}, subjects(p1) = {r2,r3,r9} → ss = 2.
        assert_eq!(card.ss, 2);
        // objects(p0) = {a,b}, objects(p1) = {x,y} → oo = 0.
        assert_eq!(card.oo, 0);
        assert_eq!(card.so, 0);
        // Self-pair: full overlap.
        let self_card = stats.pair(p0, p0).unwrap();
        assert_eq!(self_card.ss, 3);
        assert_eq!(self_card.oo, 2);
    }

    #[test]
    fn mirrored_pairs_swap_roles() {
        let s = store();
        let stats = Stats::build(&s);
        let p0 = s.dict().predicate_id(&Term::iri("p0")).unwrap();
        let p1 = s.dict().predicate_id(&Term::iri("p1")).unwrap();
        let ab = stats.pair(p0, p1).unwrap();
        let ba = stats.pair(p1, p0).unwrap();
        assert_eq!(ab.ss, ba.ss);
        assert_eq!(ab.oo, ba.oo);
        assert_eq!(ab.so, ba.os);
        assert_eq!(ab.os, ba.so);
    }

    #[test]
    fn out_of_range() {
        let s = store();
        let stats = Stats::build(&s);
        assert!(stats.pred(99).is_none());
        assert!(stats.pair(0, 99).is_none());
    }

    #[test]
    fn intersection_size_cases() {
        assert_eq!(intersection_size(&[], &[]), 0);
        assert_eq!(intersection_size(&[1, 2, 3], &[]), 0);
        assert_eq!(intersection_size(&[1, 3, 5], &[2, 4, 6]), 0);
        assert_eq!(intersection_size(&[1, 3, 5], &[3, 5, 7]), 2);
        assert_eq!(intersection_size(&[1, 2, 3], &[1, 2, 3]), 3);
    }
}
