//! Statement-boundary chunking for the parallel bulk loader.
//!
//! Parsing dominates load time, so the loader cuts the input into
//! chunks that N workers parse independently. The cut points must fall
//! on *statement* boundaries or the workers would see torn statements:
//!
//! * **N-Triples** is line-oriented — any line boundary is a statement
//!   boundary, so [`split_ntriples`] just picks line breaks near even
//!   byte offsets and records the 1-based first line of each chunk so
//!   per-chunk error positions stay document-exact.
//! * **Turtle** needs a real scan: [`split_turtle`] runs a lightweight
//!   boundary scanner (a byte-level twin of the parser's resync
//!   scanner) that tracks strings, long strings, IRIs, comments and
//!   bracket depth, and cuts after a `.` at depth 0. A dot followed by
//!   a name-continuation byte is *not* a terminator — exactly the
//!   parser's `name`/`number` rule, so `3.25` and dotted local names
//!   never produce false boundaries. `@prefix`/`PREFIX` directives are
//!   parsed by the scanner itself (they mutate document-global state)
//!   and each chunk carries a snapshot of the prefix map in force at
//!   its start.
//!
//! The scanner is deliberately fallible: anything it cannot split with
//! confidence returns `None`, and a chunk that fails to parse makes
//! the loader fall back to the serial parser — which is the single
//! source of truth for error positions and lossy-recovery semantics.
//! Chunk boundaries therefore never change *what* is loaded, only how
//! much of the work runs in parallel.

use std::collections::HashMap;
use std::ops::Range;

use crate::error::ParseError;
use crate::parser::TermTriple;

/// One chunk of an N-Triples document: a byte range that starts and
/// ends on line boundaries.
#[derive(Debug, Clone)]
pub struct NtChunk {
    /// Byte range of the chunk within the input.
    pub range: Range<usize>,
    /// 1-based document line number of the chunk's first line.
    pub first_line: usize,
}

/// Cuts `input` into roughly `target_chunks` chunks at line
/// boundaries. Chunk boundaries never affect parse results — lines are
/// independent — so the count only steers parallelism granularity.
pub fn split_ntriples(input: &str, target_chunks: usize) -> Vec<NtChunk> {
    let bytes = input.as_bytes();
    let target = (bytes.len() / target_chunks.max(1)).max(1);
    let mut chunks = Vec::new();
    let (mut start, mut start_line, mut line) = (0usize, 1usize, 1usize);
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'\n' {
            line += 1;
            if i + 1 - start >= target {
                chunks.push(NtChunk {
                    range: start..i + 1,
                    first_line: start_line,
                });
                start = i + 1;
                start_line = line;
            }
        }
    }
    if start < bytes.len() {
        chunks.push(NtChunk {
            range: start..bytes.len(),
            first_line: start_line,
        });
    }
    chunks
}

/// Parses one N-Triples chunk, returning a result per statement line
/// (blank and comment lines are dropped). Error positions carry
/// document-global line numbers. Concatenating the outputs of all
/// chunks in order is exactly the serial parse of the document.
pub fn parse_ntriples_chunk(
    input: &str,
    chunk: &NtChunk,
) -> Vec<Result<TermTriple, ParseError>> {
    input[chunk.range.clone()]
        .lines()
        .enumerate()
        .filter_map(|(i, l)| crate::parser::parse_line(l, chunk.first_line + i).transpose())
        .collect()
}

/// One chunk of a Turtle document: a run of whole triples statements
/// (never directives) plus the document state needed to parse it in
/// isolation.
#[derive(Debug, Clone)]
pub struct TurtleChunk {
    range: Range<usize>,
    line: usize,
    col: usize,
    prefixes: HashMap<String, String>,
}

impl TurtleChunk {
    /// Byte range of the chunk within the input.
    pub fn range(&self) -> Range<usize> {
        self.range.clone()
    }
}

/// Scans `input` and cuts it into roughly `target_chunks` chunks at
/// top-level statement terminators, parsing `@prefix`/`PREFIX`
/// directives along the way (each chunk snapshots the prefix map in
/// force at its start). Returns `None` when the document cannot be
/// split with confidence (malformed directive, unsupported syntax) —
/// the caller should parse serially instead.
pub fn split_turtle(input: &str, target_chunks: usize) -> Option<Vec<TurtleChunk>> {
    let target = (input.len() / target_chunks.max(1)).max(1);
    let mut sc = Scanner::new(input);
    let mut prefixes: HashMap<String, String> = HashMap::new();
    let mut chunks = Vec::new();
    let mut cur: Option<(usize, usize, usize)> = None;
    loop {
        sc.skip_trivia();
        let Some(b) = sc.peek() else { break };
        if b == b'@' || sc.keyword_ahead("prefix") || sc.keyword_ahead("base") {
            if let Some((start, line, col)) = cur.take() {
                chunks.push(TurtleChunk {
                    range: start..sc.pos,
                    line,
                    col,
                    prefixes: prefixes.clone(),
                });
            }
            sc.directive(&mut prefixes)?;
        } else {
            let (start, _, _) = *cur.get_or_insert((sc.pos, sc.line, sc.col));
            sc.skip_statement()?;
            if sc.pos - start >= target {
                let (start, line, col) = cur.take().expect("open chunk");
                chunks.push(TurtleChunk {
                    range: start..sc.pos,
                    line,
                    col,
                    prefixes: prefixes.clone(),
                });
            }
        }
    }
    if let Some((start, line, col)) = cur.take() {
        chunks.push(TurtleChunk {
            range: start..input.len(),
            line,
            col,
            prefixes,
        });
    }
    Some(chunks)
}

/// Strictly parses one Turtle chunk. Returns the chunk's triples (with
/// chunk-local `anon#N` blank labels) and its anonymous-node count;
/// feed all chunks to [`finish_turtle_chunks`] to restore the
/// document-global labels. Error positions are document-global. Any
/// error means the caller should fall back to the serial parser.
pub fn parse_turtle_chunk(
    input: &str,
    chunk: &TurtleChunk,
) -> Result<(Vec<TermTriple>, usize), ParseError> {
    crate::turtle::parse_chunk_raw(
        &input[chunk.range.clone()],
        chunk.prefixes.clone(),
        chunk.line,
        chunk.col,
    )
}

/// Merges per-chunk parse results: renumbers chunk-local anonymous
/// blank nodes into one document-global sequence (prefix sums over the
/// per-chunk counts, reproducing the serial parser's numbering) and
/// applies the same collision-avoiding rename as the serial parser.
/// The chunk structure is preserved so downstream encoding can stay
/// parallel; concatenating the returned chunks equals the serial parse.
pub fn finish_turtle_chunks(parts: Vec<(Vec<TermTriple>, usize)>) -> Vec<Vec<TermTriple>> {
    use parj_dict::Term;
    let mut chunks: Vec<Vec<TermTriple>> = Vec::with_capacity(parts.len());
    let mut offset = 0usize;
    for (mut triples, anon_count) in parts {
        if offset > 0 && anon_count > 0 {
            let renumber = |t: &mut Term| {
                if let Term::BlankNode(label) = t {
                    if let Some(n) = label.strip_prefix("anon#") {
                        if let Ok(k) = n.parse::<usize>() {
                            *label = format!("anon#{}", k + offset);
                        }
                    }
                }
            };
            for (s, _, o) in &mut triples {
                renumber(s);
                renumber(o);
            }
        }
        offset += anon_count;
        chunks.push(triples);
    }
    crate::turtle::rename_anonymous_slices(&mut chunks);
    chunks
}

/// Byte-level boundary scanner: tracks position, 1-based line and
/// char-based column (matching the parser's error positions) while
/// skipping over the token classes that can contain `.` bytes.
struct Scanner<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Scanner<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            text,
            bytes: text.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.bytes.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else if b & 0xC0 != 0x80 {
            // Count characters, not UTF-8 continuation bytes.
            self.col += 1;
        }
        Some(b)
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'#') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => break,
            }
        }
    }

    fn keyword_ahead(&self, kw: &str) -> bool {
        let mut i = self.pos;
        for k in kw.bytes() {
            match self.bytes.get(i) {
                Some(&b) if b.eq_ignore_ascii_case(&k) => i += 1,
                _ => return false,
            }
        }
        // Must not continue as a name (non-ASCII treated as continuing).
        !matches!(self.bytes.get(i),
            Some(&b) if b.is_ascii_alphanumeric() || b == b'_' || b == b':' || b >= 0x80)
    }

    /// A name token (prefix label in a directive): ASCII alnum, `_`,
    /// `-`, plus any non-ASCII character.
    fn name(&mut self) -> &'a str {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b >= 0x80 {
                self.bump();
            } else {
                break;
            }
        }
        &self.text[start..self.pos]
    }

    fn expect(&mut self, b: u8) -> Option<()> {
        self.skip_trivia();
        (self.bump() == Some(b)).then_some(())
    }

    fn hex_code(&mut self, n: usize) -> Option<u32> {
        let mut code = 0u32;
        for _ in 0..n {
            let d = (self.bump()? as char).to_digit(16)?;
            code = code * 16 + d;
        }
        Some(code)
    }

    /// Mirrors the serial parser's surrogate handling: `\uXXXX` pairs
    /// combine, unpaired/inverted surrogates return `None` so the chunk
    /// is re-parsed serially and gets the canonical line-anchored error
    /// (this path must never silently produce a corrupt term).
    fn unicode_escape(&mut self, kind: u8) -> Option<char> {
        let n = if kind == b'u' { 4 } else { 8 };
        let code = self.hex_code(n)?;
        if kind == b'u' && (0xD800..=0xDBFF).contains(&code) {
            if self.bump()? != b'\\' || self.bump()? != b'u' {
                return None;
            }
            let low = self.hex_code(4)?;
            if !(0xDC00..=0xDFFF).contains(&low) {
                return None;
            }
            return char::from_u32(0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00));
        }
        char::from_u32(code)
    }

    /// An IRI body after `<`, decoding `\u`/`\U` escapes like the
    /// parser does.
    fn iri_ref(&mut self) -> Option<String> {
        let mut buf: Vec<u8> = Vec::new();
        loop {
            match self.bump() {
                None => return None,
                Some(b'>') => return String::from_utf8(buf).ok(),
                Some(b) if b.is_ascii_whitespace() => return None,
                Some(b'\\') => match self.bump() {
                    Some(k @ (b'u' | b'U')) => {
                        let c = self.unicode_escape(k)?;
                        buf.extend_from_slice(c.encode_utf8(&mut [0; 4]).as_bytes());
                    }
                    _ => return None,
                },
                Some(b) => buf.push(b),
            }
        }
    }

    /// Parses one `@prefix`/`PREFIX` directive into `prefixes`;
    /// `@base` and anything unexpected return `None` so the serial
    /// parser can produce the canonical error.
    fn directive(&mut self, prefixes: &mut HashMap<String, String>) -> Option<()> {
        let at_form = self.peek() == Some(b'@');
        if at_form {
            self.bump();
        }
        if !self.name().eq_ignore_ascii_case("prefix") {
            return None;
        }
        self.skip_trivia();
        let prefix = self.name().to_string();
        self.expect(b':')?;
        self.skip_trivia();
        if self.bump() != Some(b'<') {
            return None;
        }
        let iri = self.iri_ref()?;
        prefixes.insert(prefix, iri);
        if at_form {
            self.expect(b'.')?;
        }
        Some(())
    }

    /// Skips one triples statement: up to and including the
    /// terminating `.` at bracket depth 0 outside strings, IRIs and
    /// comments. A dot followed by a name-continuation byte is part of
    /// a prefixed name or numeric literal, never a terminator — the
    /// same rule the parser's `name(allow_dot)`/`number` productions
    /// apply. Stops silently at end of input (the chunk parser then
    /// reports the missing terminator).
    ///
    /// Returns `None` on a closing `]`/`)` at bracket depth 0: an
    /// unbalanced bracket means the scanner's notion of "statement
    /// boundary" can no longer be trusted — silently clamping the depth
    /// (the old behavior) could resync at a `.` *inside* what the real
    /// parser treats as one statement, splitting a chunk mid-statement.
    /// The caller declines to split and the document is parsed
    /// serially, where the parser reports the malformed statement
    /// properly.
    fn skip_statement(&mut self) -> Option<()> {
        let mut depth = 0usize;
        while let Some(b) = self.peek() {
            match b {
                b'#' => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                b'"' | b'\'' => self.skip_string(b),
                b'<' => self.skip_iri(),
                b'[' | b'(' => {
                    depth += 1;
                    self.bump();
                }
                b']' | b')' => {
                    depth = depth.checked_sub(1)?;
                    self.bump();
                }
                b'.' if depth == 0 => {
                    self.bump();
                    let name_continues = matches!(self.peek(),
                        Some(n) if n.is_ascii_alphanumeric() || n == b'_' || n >= 0x80);
                    if !name_continues {
                        return Some(());
                    }
                }
                _ => {
                    self.bump();
                }
            }
        }
        Some(())
    }

    /// Skips `<…>`; stops (without consuming) at whitespace, which the
    /// parser rejects inside IRIs.
    fn skip_iri(&mut self) {
        self.bump();
        while let Some(b) = self.peek() {
            match b {
                b'>' => {
                    self.bump();
                    return;
                }
                b'\\' => {
                    self.bump();
                    self.bump();
                }
                b if b.is_ascii_whitespace() => return,
                _ => {
                    self.bump();
                }
            }
        }
    }

    /// Skips a string literal with the *parser's* tokenization (short
    /// strings run past raw newlines until the closing quote, matching
    /// `string_body`), so boundaries on parseable documents are exact.
    fn skip_string(&mut self, quote: u8) {
        self.bump();
        if self.peek() == Some(quote) {
            if self.peek_at(1) == Some(quote) {
                // Long string: ends at three closing quotes.
                self.bump();
                self.bump();
                while let Some(b) = self.bump() {
                    if b == b'\\' {
                        self.bump();
                    } else if b == quote
                        && self.peek() == Some(quote)
                        && self.peek_at(1) == Some(quote)
                    {
                        self.bump();
                        self.bump();
                        return;
                    }
                }
                return;
            }
            self.bump(); // empty short string
            return;
        }
        while let Some(b) = self.bump() {
            match b {
                b'\\' => {
                    self.bump();
                }
                b if b == quote => return,
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_ntriples_str;
    use crate::turtle::parse_turtle_str;

    const NT: &str = "<http://e/a> <http://e/p> <http://e/b> .\n\
                      # a comment line\n\
                      \n\
                      <http://e/c> <http://e/p> \"lit . with dot\" .\n\
                      <http://e/d> <http://e/p> <http://e/e> . # trailing\n\
                      <http://e/f> <http://e/p> \"x\"@en .\n";

    #[test]
    fn ntriples_chunks_reassemble_to_serial_parse() {
        let serial = parse_ntriples_str(NT).unwrap();
        for n in [1, 2, 3, 5, 100] {
            let chunks = split_ntriples(NT, n);
            assert_eq!(
                chunks.iter().map(|c| c.range.len()).sum::<usize>(),
                NT.len(),
                "chunks must partition the input"
            );
            let got: Vec<_> = chunks
                .iter()
                .flat_map(|c| parse_ntriples_chunk(NT, c))
                .map(Result::unwrap)
                .collect();
            assert_eq!(got, serial, "{n} chunks");
        }
    }

    #[test]
    fn ntriples_chunk_errors_keep_document_lines() {
        let doc = "<http://e/a> <http://e/p> <http://e/b> .\n\
                   garbage here\n\
                   <http://e/c> <http://e/p> <http://e/d> .\n\
                   also garbage\n";
        let chunks = split_ntriples(doc, 4);
        let errors: Vec<usize> = chunks
            .iter()
            .flat_map(|c| parse_ntriples_chunk(doc, c))
            .filter_map(|r| r.err().map(|e| e.line))
            .collect();
        assert_eq!(errors, vec![2, 4]);
    }

    const TTL: &str = "@prefix e: <http://e/> . # header\n\
        e:s e:p e:o1 , e:o2 ;\n   e:q 3.25 , 1.5e3 .\n\
        e:a.b e:p \"string with . dots\" .\n\
        _:b1 e:knows [ e:name 'anon . one' ; e:age 3 ] .\n\
        PREFIX f: <http://f/>\n\
        f:x a f:C ; e:p \"\"\"long\n. with . dots\n\"\"\" .\n\
        [] f:p f:o .\n\
        f:y f:p <http://e/i.r.i> .\n";

    fn chunked_turtle(doc: &str, n: usize) -> Vec<TermTriple> {
        let chunks = split_turtle(doc, n).expect("splittable");
        let parts: Vec<(Vec<TermTriple>, usize)> = chunks
            .iter()
            .map(|c| parse_turtle_chunk(doc, c).expect("chunk parses"))
            .collect();
        finish_turtle_chunks(parts).into_iter().flatten().collect()
    }

    #[test]
    fn turtle_chunks_reassemble_to_serial_parse() {
        let serial = parse_turtle_str(TTL).unwrap();
        for n in [1, 2, 3, 7, 100] {
            assert_eq!(chunked_turtle(TTL, n), serial, "{n} chunks");
        }
    }

    #[test]
    fn turtle_anonymous_numbering_is_global() {
        // Anonymous nodes in separate chunks must not collide and must
        // match the serial parser's numbering even at max chunking.
        let doc = "@prefix e: <http://e/> .\n\
                   [] e:p e:a .\n[] e:p e:b .\n[] e:p e:c .\n\
                   _:genid0 e:p [ e:q e:r ] .\n";
        let serial = parse_turtle_str(doc).unwrap();
        assert_eq!(chunked_turtle(doc, 100), serial);
    }

    #[test]
    fn turtle_prefix_redefinition_respects_chunk_snapshots() {
        let doc = "@prefix e: <http://one/> .\ne:x e:p e:y .\n\
                   @prefix e: <http://two/> .\ne:x e:p e:y .\n";
        let serial = parse_turtle_str(doc).unwrap();
        for n in [1, 2, 100] {
            assert_eq!(chunked_turtle(doc, n), serial, "{n} chunks");
        }
        assert_ne!(serial[0], serial[1]);
    }

    #[test]
    fn turtle_splitter_declines_unsupported_directives() {
        assert!(split_turtle("@base <http://e/> .\n", 2).is_none());
        assert!(split_turtle("@prefix e <oops> .\n", 2).is_none());
    }

    #[test]
    fn turtle_splitter_declines_unbalanced_close_bracket() {
        // A closing bracket with no opener means the scanner's
        // statement boundaries cannot be trusted: the splitter must
        // decline (serial fallback) instead of resyncing at a `.` the
        // real parser would treat as mid-statement.
        assert!(split_turtle("<http://e/s> <http://e/p> <http://e/o> ] .\n", 2).is_none());
        assert!(split_turtle("<http://e/s> <http://e/p> (1 2)) .\n", 2).is_none());
        // Balanced brackets still split fine.
        let ok = "@prefix e: <http://e/> .\ne:s e:p [ e:q e:r ] .\n";
        assert!(split_turtle(ok, 2).is_some());
    }

    #[test]
    fn turtle_malformed_chunk_reports_parse_error() {
        // The splitter happily cuts this, but the chunk parser must
        // fail (undeclared prefix) so the loader can fall back.
        let doc = "u:x u:p u:o .\n";
        let chunks = split_turtle(doc, 1).unwrap();
        assert!(chunks.iter().any(|c| parse_turtle_chunk(doc, c).is_err()));
    }
}
