//! Parse errors with precise source positions.

use std::fmt;

/// What went wrong while parsing a line of N-Triples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// Expected a term (IRI, blank node, or literal) but found something
    /// else or end of line.
    ExpectedTerm(&'static str),
    /// An IRI reference was not closed with `>`.
    UnclosedIri,
    /// A string literal was not closed with `"`.
    UnclosedLiteral,
    /// An escape sequence was malformed.
    BadEscape(String),
    /// A blank node label was empty or malformed.
    BadBlankNode,
    /// A language tag was empty or malformed.
    BadLanguageTag,
    /// The line did not end with `.` (optionally followed by a comment).
    MissingDot,
    /// A literal appeared in subject position (forbidden by RDF).
    LiteralSubject,
    /// The predicate was not an IRI.
    NonIriPredicate,
    /// Trailing garbage after the terminating dot.
    TrailingGarbage,
    /// Disallowed raw character inside an IRI (space, `<`, `>`, `"`, controls).
    BadIriChar(char),
    /// A closing `]` or `)` with no matching opener. Surfaced during
    /// lossy resynchronization: clamping the depth silently would let
    /// the parser resync at a statement boundary the strict grammar
    /// would never reach.
    UnbalancedBracket(char),
    /// I/O error text while reading the underlying stream.
    Io(String),
}

impl fmt::Display for ParseErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseErrorKind::ExpectedTerm(what) => write!(f, "expected {what}"),
            ParseErrorKind::UnclosedIri => write!(f, "IRI reference not closed with '>'"),
            ParseErrorKind::UnclosedLiteral => write!(f, "string literal not closed with '\"'"),
            ParseErrorKind::BadEscape(e) => write!(f, "malformed escape sequence: {e}"),
            ParseErrorKind::BadBlankNode => write!(f, "malformed blank node label"),
            ParseErrorKind::BadLanguageTag => write!(f, "malformed language tag"),
            ParseErrorKind::MissingDot => write!(f, "statement not terminated with '.'"),
            ParseErrorKind::LiteralSubject => write!(f, "literal not allowed in subject position"),
            ParseErrorKind::NonIriPredicate => write!(f, "predicate must be an IRI"),
            ParseErrorKind::TrailingGarbage => write!(f, "unexpected content after '.'"),
            ParseErrorKind::BadIriChar(c) => write!(f, "character {c:?} not allowed in IRI"),
            ParseErrorKind::UnbalancedBracket(c) => {
                write!(f, "closing {c:?} has no matching opener")
            }
            ParseErrorKind::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

/// A parse error annotated with its position in the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// 1-based byte column within the line.
    pub column: usize,
    /// The specific failure.
    pub kind: ParseErrorKind,
}

impl ParseError {
    pub(crate) fn new(line: usize, column: usize, kind: ParseErrorKind) -> Self {
        Self { line, column, kind }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, column {}: {}", self.line, self.column, self.kind)
    }
}

impl std::error::Error for ParseError {}
