//! # parj-rio — RDF I/O for PARJ
//!
//! A streaming [N-Triples](https://www.w3.org/TR/n-triples/) parser and
//! serializer. N-Triples is the line-oriented interchange syntax the
//! PARJ paper's data import consumes ("Disk-based tables are created and
//! saved during data import from RDF files", §5); this crate is the
//! substrate that turns those files into [`parj_dict::Term`] triples.
//!
//! The parser is hand-written and allocation-conscious: each line is
//! scanned once, escape sequences (`\t \b \n \r \f \" \' \\`, `\uXXXX`,
//! `\UXXXXXXXX`) are decoded in place, and errors carry exact line and
//! column positions.
//!
//! ```
//! use parj_rio::parse_ntriples_str;
//!
//! let data = r#"
//! <http://e/ProfessorA> <http://e/teaches> <http://e/Mathematics> . # a comment
//! <http://e/ProfessorA> <http://e/name> "Alice"@en .
//! "#;
//! let triples = parse_ntriples_str(data).unwrap();
//! assert_eq!(triples.len(), 2);
//! assert_eq!(triples[0].1.as_iri(), Some("http://e/teaches"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chunk;
mod error;
mod load;
mod parser;
mod turtle;
mod writer;

pub use chunk::{
    finish_turtle_chunks, parse_ntriples_chunk, parse_turtle_chunk, split_ntriples,
    split_turtle, NtChunk, TurtleChunk,
};
pub use error::{ParseError, ParseErrorKind};
pub use load::{drain_triples, parse_ntriples_str_lossy, LoadReport, OnParseError};
pub use parser::{parse_ntriples_str, NTriplesParser, TermTriple};
pub use turtle::{parse_turtle_str, parse_turtle_str_lossy};
pub use writer::{write_ntriples, write_triple};
