//! Strict-vs-lossy bulk loading: error policy and skip diagnostics.
//!
//! Real-world RDF dumps routinely contain a handful of malformed lines
//! (bad escapes, truncated statements, encoding damage). The default
//! policy is strict — the first malformed line aborts the load with a
//! positioned [`ParseError`] — but a loader can opt into
//! [`OnParseError::Skip`] to drop bad lines, bounded by `max_errors`,
//! while a [`LoadReport`] records exactly what was skipped and where.

use crate::error::{ParseError, ParseErrorKind};
use crate::parser::TermTriple;

/// What a bulk load does when a statement fails to parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OnParseError {
    /// Abort at the first malformed statement (strict mode, default).
    #[default]
    Abort,
    /// Skip malformed statements and keep loading, recording
    /// diagnostics. Tolerates at most `max_errors` skipped statements;
    /// one more aborts the load with the error that crossed the line.
    Skip {
        /// Maximum number of malformed statements to tolerate
        /// (`usize::MAX` for unbounded).
        max_errors: usize,
    },
}

/// Outcome of a (possibly lossy) bulk load.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LoadReport {
    /// Statements successfully parsed and loaded.
    pub loaded: usize,
    /// Malformed statements skipped ([`OnParseError::Skip`] only).
    pub skipped: usize,
    /// Positioned diagnostics for the first
    /// [`LoadReport::MAX_RECORDED_ERRORS`] skipped statements;
    /// `skipped` keeps the true total when more were dropped.
    pub errors: Vec<ParseError>,
}

impl LoadReport {
    /// Cap on retained [`LoadReport::errors`] so a pathological file
    /// cannot balloon memory; the `skipped` counter is always exact.
    pub const MAX_RECORDED_ERRORS: usize = 64;

    pub(crate) fn note_skip(&mut self, e: ParseError) {
        self.skipped += 1;
        if self.errors.len() < Self::MAX_RECORDED_ERRORS {
            self.errors.push(e);
        }
    }
}

/// Drains a stream of parse results under `policy`, feeding good
/// triples to `emit`.
///
/// I/O errors ([`ParseErrorKind::Io`]) are always fatal, even in skip
/// mode: a broken reader would otherwise error forever without ever
/// reaching end-of-stream.
pub fn drain_triples(
    src: impl Iterator<Item = Result<TermTriple, ParseError>>,
    policy: OnParseError,
    mut emit: impl FnMut(TermTriple),
) -> Result<LoadReport, ParseError> {
    let mut report = LoadReport::default();
    for item in src {
        match item {
            Ok(t) => {
                emit(t);
                report.loaded += 1;
            }
            Err(e) => match policy {
                OnParseError::Abort => return Err(e),
                OnParseError::Skip { .. } if matches!(e.kind, ParseErrorKind::Io(_)) => {
                    return Err(e);
                }
                OnParseError::Skip { max_errors } => {
                    let fatal = report.skipped >= max_errors;
                    report.note_skip(e.clone());
                    if fatal {
                        return Err(e);
                    }
                }
            },
        }
    }
    Ok(report)
}

/// [`crate::parse_ntriples_str`] with an error policy: returns the
/// parsed triples plus the skip diagnostics.
pub fn parse_ntriples_str_lossy(
    input: &str,
    policy: OnParseError,
) -> Result<(Vec<TermTriple>, LoadReport), ParseError> {
    let mut out = Vec::new();
    let src = input.lines().enumerate().filter_map(|(idx, line)| {
        crate::parser::parse_line(line, idx + 1).transpose()
    });
    let report = drain_triples(src, policy, |t| out.push(t))?;
    Ok((out, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    const MIXED: &str = "<http://e/a> <http://e/p> <http://e/b> .\n\
                         this line is garbage\n\
                         <http://e/c> <http://e/p> <http://e/d> .\n\
                         <http://e/unclosed <http://e/p> <http://e/x> .\n\
                         <http://e/e> <http://e/p> <http://e/f> .\n";

    #[test]
    fn strict_mode_aborts_at_first_error() {
        let err = parse_ntriples_str_lossy(MIXED, OnParseError::Abort).unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn skip_mode_loads_the_good_lines() {
        let (triples, report) =
            parse_ntriples_str_lossy(MIXED, OnParseError::Skip { max_errors: 10 }).unwrap();
        assert_eq!(triples.len(), 3);
        assert_eq!(report.loaded, 3);
        assert_eq!(report.skipped, 2);
        assert_eq!(report.errors.len(), 2);
        assert_eq!(report.errors[0].line, 2);
        assert_eq!(report.errors[1].line, 4);
    }

    #[test]
    fn skip_mode_bounds_the_damage() {
        // max_errors = 1 tolerates one bad line; the second aborts.
        let err =
            parse_ntriples_str_lossy(MIXED, OnParseError::Skip { max_errors: 1 }).unwrap_err();
        assert_eq!(err.line, 4);
        // max_errors = 0 behaves like strict mode.
        let err =
            parse_ntriples_str_lossy(MIXED, OnParseError::Skip { max_errors: 0 }).unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn surrogate_damage_recovers_at_statement_granularity() {
        // Encoding damage (lone/inverted surrogates) is confined to the
        // statement that carries it: strict mode anchors the error to
        // that line, skip mode drops exactly that statement and loads
        // the rest — including a later statement with a *valid* pair.
        let doc = "<http://e/a> <http://e/p> \"ok\" .\n\
                   <http://e/b> <http://e/p> \"bad \\uD800 high\" .\n\
                   <http://e/c> <http://e/p> \"bad \\uDC00\\uD800 inverted\" .\n\
                   <http://e/d> <http://e/p> \"good \\uD83D\\uDE00 pair\" .\n";
        let err = parse_ntriples_str_lossy(doc, OnParseError::Abort).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("unpaired high surrogate"));
        let (triples, report) =
            parse_ntriples_str_lossy(doc, OnParseError::Skip { max_errors: 10 }).unwrap();
        assert_eq!(triples.len(), 2);
        assert_eq!(report.skipped, 2);
        assert_eq!(report.errors[0].line, 2);
        assert_eq!(report.errors[1].line, 3);
        assert!(report.errors[1].to_string().contains("lone low surrogate"));
        assert_eq!(triples[1].2.as_literal(), Some("good \u{1F600} pair"));
    }

    #[test]
    fn io_errors_are_fatal_even_in_skip_mode() {
        struct BrokenReader;
        impl std::io::Read for BrokenReader {
            fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk on fire"))
            }
        }
        let parser = crate::NTriplesParser::new(std::io::BufReader::new(BrokenReader));
        let err = drain_triples(parser, OnParseError::Skip { max_errors: usize::MAX }, |_| {})
            .unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::Io(_)));
    }

    #[test]
    fn error_recording_is_capped_but_counting_is_exact() {
        let mut doc = String::new();
        for _ in 0..(LoadReport::MAX_RECORDED_ERRORS + 20) {
            doc.push_str("garbage line\n");
        }
        doc.push_str("<http://e/a> <http://e/p> <http://e/b> .\n");
        let (triples, report) =
            parse_ntriples_str_lossy(&doc, OnParseError::Skip { max_errors: usize::MAX })
                .unwrap();
        assert_eq!(triples.len(), 1);
        assert_eq!(report.skipped, LoadReport::MAX_RECORDED_ERRORS + 20);
        assert_eq!(report.errors.len(), LoadReport::MAX_RECORDED_ERRORS);
    }
}
