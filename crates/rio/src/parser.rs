//! The line-oriented N-Triples parser.

use std::io::BufRead;

use parj_dict::Term;

use crate::error::{ParseError, ParseErrorKind};

/// A parsed `(subject, predicate, object)` triple of terms.
pub type TermTriple = (Term, Term, Term);

/// Streaming N-Triples parser over any [`BufRead`] source.
///
/// Iterate it to receive one triple per statement line; blank lines and
/// comment lines are skipped. The iterator yields `Result` so malformed
/// lines surface with their exact position without aborting the caller's
/// control flow.
///
/// ```
/// use parj_rio::NTriplesParser;
/// let src = "<http://e/s> <http://e/p> \"42\"^^<http://www.w3.org/2001/XMLSchema#int> .\n";
/// let mut p = NTriplesParser::new(src.as_bytes());
/// let (s, _p, o) = p.next().unwrap().unwrap();
/// assert_eq!(s.as_iri(), Some("http://e/s"));
/// assert_eq!(o.as_literal(), Some("42"));
/// ```
pub struct NTriplesParser<R> {
    reader: R,
    line_no: usize,
    buf: String,
}

impl<R: BufRead> NTriplesParser<R> {
    /// Creates a parser over `reader`.
    pub fn new(reader: R) -> Self {
        Self {
            reader,
            line_no: 0,
            buf: String::with_capacity(256),
        }
    }
}

impl<R: BufRead> Iterator for NTriplesParser<R> {
    type Item = Result<TermTriple, ParseError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            self.buf.clear();
            self.line_no += 1;
            match self.reader.read_line(&mut self.buf) {
                Ok(0) => return None,
                Ok(_) => {}
                Err(e) => {
                    return Some(Err(ParseError::new(
                        self.line_no,
                        1,
                        ParseErrorKind::Io(e.to_string()),
                    )))
                }
            }
            match parse_line(&self.buf, self.line_no) {
                Ok(Some(t)) => return Some(Ok(t)),
                Ok(None) => continue, // blank or comment line
                Err(e) => return Some(Err(e)),
            }
        }
    }
}

/// Parses a whole N-Triples document held in memory, collecting either
/// all triples or the first error.
pub fn parse_ntriples_str(input: &str) -> Result<Vec<TermTriple>, ParseError> {
    let mut out = Vec::new();
    for (idx, line) in input.lines().enumerate() {
        if let Some(t) = parse_line(line, idx + 1)? {
            out.push(t);
        }
    }
    Ok(out)
}

/// Byte-cursor over one line.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn err(&self, kind: ParseErrorKind) -> ParseError {
        ParseError::new(self.line, self.pos + 1, kind)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ') | Some(b'\t')) {
            self.pos += 1;
        }
    }

    /// Reads exactly `n` hex digits and returns the code they denote.
    fn hex_escape_code(&mut self, n: usize) -> Result<u32, ParseError> {
        let start = self.pos;
        if self.pos + n > self.bytes.len() {
            return Err(self.err(ParseErrorKind::BadEscape("truncated \\u escape".into())));
        }
        let hex = &self.bytes[start..start + n];
        self.pos += n;
        let s = std::str::from_utf8(hex)
            .map_err(|_| self.err(ParseErrorKind::BadEscape("non-ASCII in \\u escape".into())))?;
        u32::from_str_radix(s, 16)
            .map_err(|_| self.err(ParseErrorKind::BadEscape(format!("bad hex {s:?}"))))
    }

    /// Decodes `\uXXXX` / `\UXXXXXXXX` (the leading backslash is already
    /// consumed, `kind` is the `u`/`U` byte).
    ///
    /// A `\uXXXX` in the surrogate range is decoded UTF-16 style: a high
    /// surrogate must be immediately followed by a `\uXXXX` low
    /// surrogate (as emitted by JSON-era exporters) and the pair
    /// combines into one scalar value. Unpaired highs and lone/inverted
    /// lows are rejected with a surrogate-specific, line-anchored error
    /// instead of silently producing a corrupt term.
    fn unicode_escape(&mut self, kind: u8) -> Result<char, ParseError> {
        let n = if kind == b'u' { 4 } else { 8 };
        let code = self.hex_escape_code(n)?;
        if kind == b'u' && (0xD800..=0xDBFF).contains(&code) {
            // High surrogate: the low half must follow as `\uXXXX`.
            if self.peek() == Some(b'\\') && self.bytes.get(self.pos + 1) == Some(&b'u') {
                self.pos += 2;
                let low = self.hex_escape_code(4)?;
                if (0xDC00..=0xDFFF).contains(&low) {
                    let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                    return char::from_u32(combined).ok_or_else(|| {
                        self.err(ParseErrorKind::BadEscape(format!(
                            "U+{combined:X} is not a scalar value"
                        )))
                    });
                }
                return Err(self.err(ParseErrorKind::BadEscape(format!(
                    "unpaired high surrogate U+{code:04X}: \\u{low:04X} is not a low surrogate"
                ))));
            }
            return Err(self.err(ParseErrorKind::BadEscape(format!(
                "unpaired high surrogate U+{code:04X}: expected \\uDC00..\\uDFFF to follow"
            ))));
        }
        if kind == b'u' && (0xDC00..=0xDFFF).contains(&code) {
            return Err(self.err(ParseErrorKind::BadEscape(format!(
                "inverted surrogate pair: lone low surrogate U+{code:04X}"
            ))));
        }
        char::from_u32(code).ok_or_else(|| {
            self.err(ParseErrorKind::BadEscape(format!(
                "U+{code:X} is not a scalar value"
            )))
        })
    }

    /// Parses an `<IRI>`; the `<` is already consumed.
    fn iri_body(&mut self) -> Result<String, ParseError> {
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err(ParseErrorKind::UnclosedIri)),
                Some(b'>') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(k @ (b'u' | b'U')) => out.push(self.unicode_escape(k)?),
                    other => {
                        return Err(self.err(ParseErrorKind::BadEscape(format!(
                            "\\{} not allowed in IRI",
                            other.map(char::from).unwrap_or(' ')
                        ))))
                    }
                },
                Some(b) if b < 0x20 || matches!(b, b' ' | b'<' | b'"' | b'{' | b'}' | b'|' | b'^' | b'`') => {
                    return Err(self.err(ParseErrorKind::BadIriChar(b as char)));
                }
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Multi-byte UTF-8: copy the full sequence verbatim.
                    let len = utf8_len(b);
                    let start = self.pos - 1;
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| self.err(ParseErrorKind::BadIriChar('\u{FFFD}')))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    /// Parses a `"string"`; the opening quote is already consumed.
    fn string_body(&mut self) -> Result<String, ParseError> {
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err(ParseErrorKind::UnclosedLiteral)),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b'f') => out.push('\u{C}'),
                    Some(b'"') => out.push('"'),
                    Some(b'\'') => out.push('\''),
                    Some(b'\\') => out.push('\\'),
                    Some(k @ (b'u' | b'U')) => out.push(self.unicode_escape(k)?),
                    other => {
                        return Err(self.err(ParseErrorKind::BadEscape(format!(
                            "\\{}",
                            other.map(char::from).unwrap_or(' ')
                        ))))
                    }
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    let len = utf8_len(b);
                    let start = self.pos - 1;
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| {
                            self.err(ParseErrorKind::BadEscape("invalid UTF-8".into()))
                        })?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    /// Parses a blank node label; the `_` is already consumed.
    fn blank_label(&mut self) -> Result<String, ParseError> {
        if self.bump() != Some(b':') {
            return Err(self.err(ParseErrorKind::BadBlankNode));
        }
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b'.' || b >= 0x80 {
                self.pos += 1;
            } else {
                break;
            }
        }
        // A trailing '.' belongs to the statement terminator, not the label.
        let mut end = self.pos;
        while end > start && self.bytes[end - 1] == b'.' {
            end -= 1;
            self.pos -= 1;
        }
        if end == start {
            return Err(self.err(ParseErrorKind::BadBlankNode));
        }
        std::str::from_utf8(&self.bytes[start..end])
            .map(str::to_string)
            .map_err(|_| self.err(ParseErrorKind::BadBlankNode))
    }

    /// Parses one term at the cursor.
    fn term(&mut self, position: &'static str) -> Result<Term, ParseError> {
        match self.peek() {
            Some(b'<') => {
                self.pos += 1;
                Ok(Term::Iri(self.iri_body()?))
            }
            Some(b'_') => {
                self.pos += 1;
                Ok(Term::BlankNode(self.blank_label()?))
            }
            Some(b'"') => {
                self.pos += 1;
                let lexical = self.string_body()?;
                match self.peek() {
                    Some(b'@') => {
                        self.pos += 1;
                        let start = self.pos;
                        while let Some(b) = self.peek() {
                            if b.is_ascii_alphanumeric() || b == b'-' {
                                self.pos += 1;
                            } else {
                                break;
                            }
                        }
                        if self.pos == start {
                            return Err(self.err(ParseErrorKind::BadLanguageTag));
                        }
                        let lang =
                            std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII");
                        Ok(Term::lang_literal(lexical, lang))
                    }
                    Some(b'^') => {
                        self.pos += 1;
                        if self.bump() != Some(b'^') || self.bump() != Some(b'<') {
                            return Err(self.err(ParseErrorKind::ExpectedTerm("^^<datatype>")));
                        }
                        let dt = self.iri_body()?;
                        Ok(Term::typed_literal(lexical, dt))
                    }
                    _ => Ok(Term::literal(lexical)),
                }
            }
            _ => Err(self.err(ParseErrorKind::ExpectedTerm(position))),
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Parses one line; `Ok(None)` for blank/comment lines.
pub(crate) fn parse_line(line: &str, line_no: usize) -> Result<Option<TermTriple>, ParseError> {
    let mut c = Cursor {
        bytes: line.trim_end_matches(['\n', '\r']).as_bytes(),
        pos: 0,
        line: line_no,
    };
    c.skip_ws();
    match c.peek() {
        None | Some(b'#') => return Ok(None),
        _ => {}
    }

    let subject = c.term("IRI or blank node in subject position")?;
    if subject.is_literal() {
        return Err(c.err(ParseErrorKind::LiteralSubject));
    }
    c.skip_ws();
    let predicate = c.term("IRI in predicate position")?;
    if predicate.as_iri().is_none() {
        return Err(c.err(ParseErrorKind::NonIriPredicate));
    }
    c.skip_ws();
    let object = c.term("term in object position")?;
    c.skip_ws();
    if c.bump() != Some(b'.') {
        return Err(c.err(ParseErrorKind::MissingDot));
    }
    c.skip_ws();
    match c.peek() {
        None | Some(b'#') => Ok(Some((subject, predicate, object))),
        Some(_) => Err(c.err(ParseErrorKind::TrailingGarbage)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(line: &str) -> TermTriple {
        parse_line(line, 1).unwrap().unwrap()
    }

    fn fails(line: &str) -> ParseErrorKind {
        parse_line(line, 1).unwrap_err().kind
    }

    #[test]
    fn plain_triple() {
        let (s, p, o) = one("<http://e/s> <http://e/p> <http://e/o> .");
        assert_eq!(s, Term::iri("http://e/s"));
        assert_eq!(p, Term::iri("http://e/p"));
        assert_eq!(o, Term::iri("http://e/o"));
    }

    #[test]
    fn literal_objects() {
        let (_, _, o) = one(r#"<http://e/s> <http://e/p> "hello world" ."#);
        assert_eq!(o, Term::literal("hello world"));
        let (_, _, o) = one(r#"<http://e/s> <http://e/p> "bonjour"@fr-CA ."#);
        assert_eq!(o, Term::lang_literal("bonjour", "fr-CA"));
        let (_, _, o) =
            one(r#"<http://e/s> <http://e/p> "5"^^<http://www.w3.org/2001/XMLSchema#int> ."#);
        assert_eq!(
            o,
            Term::typed_literal("5", "http://www.w3.org/2001/XMLSchema#int")
        );
    }

    #[test]
    fn escapes_decoded() {
        let (_, _, o) = one(r#"<http://e/s> <http://e/p> "a\tb\nc\"d\\e" ."#);
        assert_eq!(o, Term::literal("a\tb\nc\"d\\e"));
        let (_, _, o) = one(r#"<http://e/s> <http://e/p> "é\U0001F600" ."#);
        assert_eq!(o, Term::literal("é😀"));
        let (s, _, _) = one(r#"<http://e/café> <http://e/p> <http://e/o> ."#);
        assert_eq!(s, Term::iri("http://e/café"));
    }

    #[test]
    fn blank_nodes() {
        let (s, _, o) = one("_:alice <http://e/knows> _:bob .");
        assert_eq!(s, Term::blank("alice"));
        assert_eq!(o, Term::blank("bob"));
        // Label followed directly by the statement dot.
        let (s, _, _) = one("_:a.b <http://e/p> <http://e/o> .");
        assert_eq!(s, Term::blank("a.b"));
    }

    #[test]
    fn comments_and_blank_lines() {
        assert_eq!(parse_line("", 1).unwrap(), None);
        assert_eq!(parse_line("   \t ", 1).unwrap(), None);
        assert_eq!(parse_line("# full line comment", 1).unwrap(), None);
        let t = parse_line("<http://e/s> <http://e/p> <http://e/o> . # trailing", 1)
            .unwrap()
            .unwrap();
        assert_eq!(t.0, Term::iri("http://e/s"));
    }

    #[test]
    fn unicode_iri_passthrough() {
        let (s, _, _) = one("<http://e/café> <http://e/p> <http://e/o> .");
        assert_eq!(s, Term::iri("http://e/café"));
    }

    #[test]
    fn error_cases() {
        assert!(matches!(
            fails(r#""literal" <http://e/p> <http://e/o> ."#),
            ParseErrorKind::LiteralSubject
        ));
        assert!(matches!(
            fails("<http://e/s> _:b <http://e/o> ."),
            ParseErrorKind::NonIriPredicate
        ));
        assert!(matches!(
            fails("<http://e/s> <http://e/p> <http://e/o>"),
            ParseErrorKind::MissingDot
        ));
        assert!(matches!(
            fails("<http://e/s> <http://e/p> <http://e/o> . extra"),
            ParseErrorKind::TrailingGarbage
        ));
        assert!(matches!(
            fails("<http://e/unclosed <http://e/p> <http://e/o> ."),
            ParseErrorKind::BadIriChar(_) | ParseErrorKind::UnclosedIri
        ));
        assert!(matches!(
            fails(r#"<http://e/s> <http://e/p> "unclosed ."#),
            ParseErrorKind::UnclosedLiteral
        ));
        assert!(matches!(
            fails(r#"<http://e/s> <http://e/p> "bad \q escape" ."#),
            ParseErrorKind::BadEscape(_)
        ));
        assert!(matches!(
            fails(r#"<http://e/s> <http://e/p> "x"@ ."#),
            ParseErrorKind::BadLanguageTag
        ));
        assert!(matches!(
            fails(r#"<http://e/s> <http://e/p> "\uD800" ."#),
            ParseErrorKind::BadEscape(_) // lone surrogate
        ));
    }

    #[test]
    fn surrogate_pairs_decode_and_lone_halves_are_rejected() {
        // A valid UTF-16 pair combines into one scalar value, in both
        // literal and IRI positions.
        let pair = r"\uD83D\uDE00"; // U+1F600 as a UTF-16 escape pair
        let (_, _, o) = one(&format!(r#"<http://e/s> <http://e/p> "{pair}" ."#));
        assert_eq!(o, Term::literal("\u{1F600}"));
        let (s, _, _) = one(&format!(r"<http://e/{pair}> <http://e/p> <http://e/o> ."));
        assert_eq!(s, Term::iri("http://e/\u{1F600}"));

        // Each failure mode gets its own line-anchored diagnostic.
        let cases: [(&str, &str); 4] = [
            (r#""\uD800""#, "unpaired high surrogate"),
            (r#""\uD800x""#, "unpaired high surrogate"),
            (r#""\uD800\u0041""#, "is not a low surrogate"),
            (r#""\uDC00\uD800""#, "lone low surrogate"),
        ];
        for (lit, want) in cases {
            let line = format!("<http://e/s> <http://e/p> {lit} .");
            let err = parse_line(&line, 42).unwrap_err();
            assert_eq!(err.line, 42, "{lit}");
            assert!(err.column > 26, "{lit}: column {}", err.column);
            match err.kind {
                ParseErrorKind::BadEscape(msg) => {
                    assert!(msg.contains(want), "{lit}: {msg:?} missing {want:?}")
                }
                other => panic!("{lit}: expected BadEscape, got {other:?}"),
            }
        }
        // \U00.. surrogates stay plain "not a scalar value" errors.
        assert!(matches!(
            fails(r#"<http://e/s> <http://e/p> "\U0000D800" ."#),
            ParseErrorKind::BadEscape(_)
        ));
    }

    #[test]
    fn error_positions_are_reported() {
        let e = parse_line("<http://e/s> <http://e/p> <http://e/o>", 7).unwrap_err();
        assert_eq!(e.line, 7);
        assert!(e.column > 30, "column {} should be near line end", e.column);
    }

    #[test]
    fn streaming_parser_skips_and_counts_lines() {
        let src = "\n# c\n<http://e/a> <http://e/p> <http://e/b> .\nbad line\n";
        let mut p = NTriplesParser::new(src.as_bytes());
        assert!(p.next().unwrap().is_ok());
        let err = p.next().unwrap().unwrap_err();
        assert_eq!(err.line, 4);
        assert!(p.next().is_none());
    }

    #[test]
    fn crlf_lines() {
        let src = "<http://e/a> <http://e/p> <http://e/b> .\r\n";
        let mut p = NTriplesParser::new(src.as_bytes());
        let (s, _, _) = p.next().unwrap().unwrap();
        assert_eq!(s, Term::iri("http://e/a"));
    }
}
