//! A Turtle subset parser.
//!
//! [Turtle](https://www.w3.org/TR/turtle/) is the human-oriented RDF
//! syntax most published datasets ship in. This parser covers the
//! subset that real data uses:
//!
//! * `@prefix` / `PREFIX` directives and prefixed names,
//! * the `a` keyword, `;` predicate lists and `,` object lists,
//! * IRIs, blank node labels, anonymous blank nodes `[ … ]` (with
//!   nested property lists),
//! * string literals (single/double quoted and triple-quoted long
//!   strings) with escapes, language tags and datatypes,
//! * numeric literals (`42` → `xsd:integer`, `3.14` → `xsd:decimal`,
//!   `1e3`-style → `xsd:double`) and booleans,
//! * comments.
//!
//! Out of scope (rejected with a positioned error, never misparsed):
//! `@base`/relative IRIs and RDF collections `( … )`.

use parj_dict::Term;

use crate::error::{ParseError, ParseErrorKind};
use crate::load::{LoadReport, OnParseError};
use crate::parser::TermTriple;

/// `xsd` datatype IRIs for Turtle's sugared literal forms.
const XSD_INTEGER: &str = "http://www.w3.org/2001/XMLSchema#integer";
const XSD_DECIMAL: &str = "http://www.w3.org/2001/XMLSchema#decimal";
const XSD_DOUBLE: &str = "http://www.w3.org/2001/XMLSchema#double";
const XSD_BOOLEAN: &str = "http://www.w3.org/2001/XMLSchema#boolean";
/// `rdf:type`, abbreviated by `a`.
const RDF_TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

/// Parses a complete Turtle document, returning all triples (blank
/// nodes get document-scoped labels; anonymous nodes get generated
/// labels that cannot collide with parsed ones).
pub fn parse_turtle_str(input: &str) -> Result<Vec<TermTriple>, ParseError> {
    parse_turtle_str_lossy(input, OnParseError::Abort).map(|(t, _)| t)
}

/// [`parse_turtle_str`] with an error policy. In
/// [`OnParseError::Skip`] mode a malformed statement is dropped whole
/// (any triples it had already produced are rolled back), the parser
/// resynchronizes at the next statement terminator, and the skip is
/// recorded in the returned [`LoadReport`].
///
/// Recovery is best-effort: a `.` inside a malformed statement (e.g.
/// in a decimal literal) can end resynchronization early, in which
/// case the tail of that statement is skipped as a second malformed
/// statement — counted against `max_errors` like any other.
pub fn parse_turtle_str_lossy(
    input: &str,
    policy: OnParseError,
) -> Result<(Vec<TermTriple>, LoadReport), ParseError> {
    let mut p = Turtle {
        chars: input.chars().collect(),
        pos: 0,
        line: 1,
        col: 1,
        prefixes: std::collections::HashMap::new(),
        out: Vec::new(),
        next_anon: 0,
    };
    let mut report = LoadReport::default();
    loop {
        p.skip_trivia();
        if p.peek().is_none() {
            break;
        }
        let mark = p.out.len();
        match p.statement() {
            Ok(()) => {}
            Err(e) => match policy {
                OnParseError::Abort => return Err(e),
                OnParseError::Skip { max_errors } => {
                    p.out.truncate(mark);
                    let fatal = report.skipped >= max_errors;
                    report.note_skip(e.clone());
                    if fatal {
                        return Err(e);
                    }
                    if let Some(unbalanced) = p.recover() {
                        // A closing bracket with no opener in the
                        // skipped region: count it as its own skipped
                        // defect (against `max_errors`) rather than
                        // resyncing as if the document were clean.
                        let fatal = report.skipped >= max_errors;
                        report.note_skip(unbalanced.clone());
                        if fatal {
                            return Err(unbalanced);
                        }
                    }
                }
            },
        }
    }
    report.loaded = p.out.len();
    Ok((rename_anonymous(p.out), report))
}

/// During parsing, anonymous nodes get `anon#N` labels — `#` cannot
/// occur in a parsed label, so they are collision-free but also not
/// valid N-Triples/Turtle syntax. Rename them to a plain prefix chosen
/// to avoid every document label, so the output serializes cleanly in
/// any RDF syntax.
fn rename_anonymous(mut triples: Vec<TermTriple>) -> Vec<TermTriple> {
    rename_anonymous_slices(std::slice::from_mut(&mut triples));
    triples
}

/// [`rename_anonymous`] over a document split into chunks: the prefix
/// is chosen against the labels of *all* chunks, so the result equals
/// renaming the concatenation.
pub(crate) fn rename_anonymous_slices(chunks: &mut [Vec<TermTriple>]) {
    let mut has_generated = false;
    let mut prefix = String::from("genid");
    loop {
        let mut clash = false;
        for (s, _, o) in chunks.iter().flatten() {
            for t in [s, o] {
                if let Term::BlankNode(label) = t {
                    if label.contains('#') {
                        has_generated = true;
                    } else if label.starts_with(&prefix) {
                        clash = true;
                    }
                }
            }
        }
        if !clash {
            break;
        }
        prefix.push('x');
    }
    if !has_generated {
        return;
    }
    let rename = |t: &mut Term| {
        if let Term::BlankNode(label) = t {
            if let Some(n) = label.strip_prefix("anon#") {
                *label = format!("{prefix}{n}");
            }
        }
    };
    for (s, _, o) in chunks.iter_mut().flatten() {
        rename(s);
        rename(o);
    }
}

/// Strictly parses one chunk of a Turtle document for the parallel
/// loader: a run of triples statements (no directives — the splitter
/// keeps those out) starting at document position `line`/`col`, with
/// the prefix map in force at the chunk start. Returns the chunk's
/// triples with *raw* chunk-local `anon#N` labels plus the number of
/// anonymous nodes allocated; [`rename_anonymous_slices`] plus the
/// renumbering in [`crate::chunk::finish_turtle_chunks`] restore the
/// document-global labels.
pub(crate) fn parse_chunk_raw(
    input: &str,
    prefixes: std::collections::HashMap<String, String>,
    line: usize,
    col: usize,
) -> Result<(Vec<TermTriple>, usize), ParseError> {
    let mut p = Turtle {
        chars: input.chars().collect(),
        pos: 0,
        line,
        col,
        prefixes,
        out: Vec::new(),
        next_anon: 0,
    };
    loop {
        p.skip_trivia();
        if p.peek().is_none() {
            break;
        }
        if p.peek() == Some('@') || p.keyword_ahead("prefix") || p.keyword_ahead("base") {
            // The splitter cuts directives out of chunks; seeing one
            // here means the boundary scan disagreed with the parser.
            // Fail the chunk so the loader falls back to serial parsing.
            return Err(p.err_msg("directive inside parallel chunk"));
        }
        p.statement()?;
    }
    Ok((p.out, p.next_anon))
}

struct Turtle {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    col: usize,
    prefixes: std::collections::HashMap<String, String>,
    out: Vec<TermTriple>,
    next_anon: usize,
}

impl Turtle {
    fn err(&self, kind: ParseErrorKind) -> ParseError {
        ParseError::new(self.line, self.col, kind)
    }

    fn err_msg(&self, msg: impl Into<String>) -> ParseError {
        self.err(ParseErrorKind::BadEscape(msg.into()))
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('#') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => break,
            }
        }
    }

    fn expect(&mut self, c: char) -> Result<(), ParseError> {
        self.skip_trivia();
        if self.bump() == Some(c) {
            Ok(())
        } else {
            Err(self.err_msg(format!("expected {c:?}")))
        }
    }

    fn keyword_ahead(&self, kw: &str) -> bool {
        let mut i = self.pos;
        for k in kw.chars() {
            match self.chars.get(i) {
                Some(&c) if c.eq_ignore_ascii_case(&k) => i += 1,
                _ => return false,
            }
        }
        // Must not continue as a name.
        !matches!(self.chars.get(i), Some(c) if c.is_alphanumeric() || *c == '_' || *c == ':')
    }

    fn take_keyword(&mut self, kw: &str) {
        for _ in kw.chars() {
            self.bump();
        }
    }

    fn fresh_anon(&mut self) -> Term {
        // '#' cannot appear in a parsed blank-node label, so generated
        // labels never collide with document labels.
        let t = Term::blank(format!("anon#{}", self.next_anon));
        self.next_anon += 1;
        t
    }

    fn name(&mut self, allow_dot: bool) -> String {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            let ok = c.is_alphanumeric()
                || c == '_'
                || c == '-'
                || (allow_dot
                    && c == '.'
                    && matches!(self.peek2(), Some(n) if n.is_alphanumeric() || n == '_'));
            if ok {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        s
    }

    fn iri_ref(&mut self) -> Result<String, ParseError> {
        // '<' consumed by caller.
        let mut iri = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err(ParseErrorKind::UnclosedIri)),
                Some('>') => return Ok(iri),
                Some(c) if c.is_whitespace() => {
                    return Err(self.err(ParseErrorKind::BadIriChar(c)))
                }
                Some('\\') => match self.bump() {
                    Some(k @ ('u' | 'U')) => iri.push(self.unicode_escape(k)?),
                    other => {
                        return Err(self.err_msg(format!(
                            "\\{} not allowed in IRI",
                            other.unwrap_or(' ')
                        )))
                    }
                },
                Some(c) => iri.push(c),
            }
        }
    }

    fn hex_escape_code(&mut self, n: usize) -> Result<u32, ParseError> {
        let mut code = 0u32;
        for _ in 0..n {
            let c = self
                .bump()
                .ok_or_else(|| self.err_msg("truncated \\u escape"))?;
            code = code * 16
                + c.to_digit(16)
                    .ok_or_else(|| self.err_msg(format!("bad hex digit {c:?}")))?;
        }
        Ok(code)
    }

    /// `\uXXXX` surrogate handling matches the N-Triples parser: a high
    /// surrogate pairs with an immediately-following `\uXXXX` low half;
    /// unpaired/inverted surrogates get a surrogate-specific error.
    fn unicode_escape(&mut self, kind: char) -> Result<char, ParseError> {
        let n = if kind == 'u' { 4 } else { 8 };
        let code = self.hex_escape_code(n)?;
        if kind == 'u' && (0xD800..=0xDBFF).contains(&code) {
            if self.peek() == Some('\\') && self.peek2() == Some('u') {
                self.bump();
                self.bump();
                let low = self.hex_escape_code(4)?;
                if (0xDC00..=0xDFFF).contains(&low) {
                    let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                    return char::from_u32(combined)
                        .ok_or_else(|| self.err_msg(format!("U+{combined:X} not a scalar")));
                }
                return Err(self.err_msg(format!(
                    "unpaired high surrogate U+{code:04X}: \\u{low:04X} is not a low surrogate"
                )));
            }
            return Err(self.err_msg(format!(
                "unpaired high surrogate U+{code:04X}: expected \\uDC00..\\uDFFF to follow"
            )));
        }
        if kind == 'u' && (0xDC00..=0xDFFF).contains(&code) {
            return Err(self.err_msg(format!(
                "inverted surrogate pair: lone low surrogate U+{code:04X}"
            )));
        }
        char::from_u32(code).ok_or_else(|| self.err_msg(format!("U+{code:X} not a scalar")))
    }

    fn expand(&self, prefix: &str, local: &str) -> Result<String, ParseError> {
        match self.prefixes.get(prefix) {
            Some(ns) => Ok(format!("{ns}{local}")),
            None => Err(self.err_msg(format!("undeclared prefix `{prefix}:`"))),
        }
    }

    /// A string body; `quote` is the quote char, `long` selects
    /// triple-quoted parsing (the opening quotes are consumed).
    fn string_body(&mut self, quote: char, long: bool) -> Result<String, ParseError> {
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err(ParseErrorKind::UnclosedLiteral)),
                Some(c) if c == quote => {
                    if !long {
                        return Ok(s);
                    }
                    // Long string: need three closing quotes.
                    if self.peek() == Some(quote) && self.peek2() == Some(quote) {
                        self.bump();
                        self.bump();
                        return Ok(s);
                    }
                    s.push(c);
                }
                Some('\\') => match self.bump() {
                    Some('t') => s.push('\t'),
                    Some('b') => s.push('\u{8}'),
                    Some('n') => s.push('\n'),
                    Some('r') => s.push('\r'),
                    Some('f') => s.push('\u{C}'),
                    Some('"') => s.push('"'),
                    Some('\'') => s.push('\''),
                    Some('\\') => s.push('\\'),
                    Some(k @ ('u' | 'U')) => s.push(self.unicode_escape(k)?),
                    other => {
                        return Err(self.err(ParseErrorKind::BadEscape(format!(
                            "\\{}",
                            other.unwrap_or(' ')
                        ))))
                    }
                },
                Some(c) => s.push(c),
            }
        }
    }

    fn literal(&mut self) -> Result<Term, ParseError> {
        let quote = self.bump().expect("caller saw a quote");
        let long = self.peek() == Some(quote) && self.peek2() == Some(quote);
        let lexical = if long {
            self.bump();
            self.bump();
            self.string_body(quote, true)?
        } else if self.peek() == Some(quote) {
            // Empty short string: second quote closes immediately.
            self.bump();
            String::new()
        } else {
            self.string_body(quote, false)?
        };
        match self.peek() {
            Some('@') => {
                self.bump();
                let lang = self.name(false);
                if lang.is_empty() {
                    return Err(self.err(ParseErrorKind::BadLanguageTag));
                }
                Ok(Term::lang_literal(lexical, lang))
            }
            Some('^') => {
                self.bump();
                if self.bump() != Some('^') {
                    return Err(self.err_msg("expected ^^ before datatype"));
                }
                self.skip_trivia();
                let dt = match self.peek() {
                    Some('<') => {
                        self.bump();
                        self.iri_ref()?
                    }
                    _ => {
                        let prefix = self.name(false);
                        if self.bump() != Some(':') {
                            return Err(self.err_msg("expected datatype IRI or prefixed name"));
                        }
                        let local = self.name(true);
                        self.expand(&prefix, &local)?
                    }
                };
                Ok(Term::typed_literal(lexical, dt))
            }
            _ => Ok(Term::literal(lexical)),
        }
    }

    fn number(&mut self) -> Result<Term, ParseError> {
        let mut text = String::new();
        if matches!(self.peek(), Some('+' | '-')) {
            text.push(self.bump().expect("sign"));
        }
        let mut is_decimal = false;
        let mut is_double = false;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                text.push(c);
                self.bump();
            } else if c == '.'
                && !is_decimal
                && matches!(self.peek2(), Some(d) if d.is_ascii_digit())
            {
                is_decimal = true;
                text.push(c);
                self.bump();
            } else if matches!(c, 'e' | 'E') {
                is_double = true;
                text.push(c);
                self.bump();
                if matches!(self.peek(), Some('+' | '-')) {
                    text.push(self.bump().expect("sign"));
                }
            } else {
                break;
            }
        }
        if text.is_empty() || text.ends_with(['+', '-']) {
            return Err(self.err_msg("malformed numeric literal"));
        }
        let dt = if is_double {
            XSD_DOUBLE
        } else if is_decimal {
            XSD_DECIMAL
        } else {
            XSD_INTEGER
        };
        Ok(Term::typed_literal(text, dt))
    }

    /// Parses a subject/object term. `as_subject` restricts literals.
    fn term(&mut self, as_subject: bool) -> Result<Term, ParseError> {
        self.skip_trivia();
        match self.peek() {
            Some('<') => {
                self.bump();
                Ok(Term::Iri(self.iri_ref()?))
            }
            Some('_') => {
                self.bump();
                if self.bump() != Some(':') {
                    return Err(self.err(ParseErrorKind::BadBlankNode));
                }
                let label = self.name(true);
                if label.is_empty() {
                    return Err(self.err(ParseErrorKind::BadBlankNode));
                }
                Ok(Term::blank(label))
            }
            Some('[') => {
                self.bump();
                let node = self.fresh_anon();
                self.skip_trivia();
                if self.peek() == Some(']') {
                    self.bump();
                } else {
                    self.predicate_object_list(&node)?;
                    self.expect(']')?;
                }
                Ok(node)
            }
            Some('(') => Err(self.err_msg(
                "RDF collections `( … )` are outside the supported Turtle subset",
            )),
            Some('"') | Some('\'') if !as_subject => self.literal(),
            Some(c) if (c.is_ascii_digit() || c == '+' || c == '-') && !as_subject => {
                self.number()
            }
            Some(c) if c.is_alphabetic() || c == ':' => {
                if !as_subject && self.keyword_ahead("true") {
                    self.take_keyword("true");
                    return Ok(Term::typed_literal("true", XSD_BOOLEAN));
                }
                if !as_subject && self.keyword_ahead("false") {
                    self.take_keyword("false");
                    return Ok(Term::typed_literal("false", XSD_BOOLEAN));
                }
                let prefix = if c == ':' { String::new() } else { self.name(false) };
                if self.bump() != Some(':') {
                    return Err(self.err_msg(format!("expected `:` after prefix {prefix:?}")));
                }
                let local = self.name(true);
                Ok(Term::Iri(self.expand(&prefix, &local)?))
            }
            other => Err(self.err(ParseErrorKind::ExpectedTerm(if as_subject {
                "subject"
            } else {
                "object"
            })
            .clone_with(other))),
        }
    }

    fn verb(&mut self) -> Result<Term, ParseError> {
        self.skip_trivia();
        if self.keyword_ahead("a") {
            self.take_keyword("a");
            return Ok(Term::iri(RDF_TYPE));
        }
        match self.peek() {
            Some('<') => {
                self.bump();
                Ok(Term::Iri(self.iri_ref()?))
            }
            Some(c) if c.is_alphabetic() || c == ':' => {
                let prefix = if c == ':' { String::new() } else { self.name(false) };
                if self.bump() != Some(':') {
                    return Err(self.err_msg("expected prefixed name as predicate"));
                }
                let local = self.name(true);
                Ok(Term::Iri(self.expand(&prefix, &local)?))
            }
            _ => Err(self.err(ParseErrorKind::NonIriPredicate)),
        }
    }

    fn predicate_object_list(&mut self, subject: &Term) -> Result<(), ParseError> {
        loop {
            let p = self.verb()?;
            loop {
                let o = self.term(false)?;
                self.out.push((subject.clone(), p.clone(), o));
                self.skip_trivia();
                if self.peek() == Some(',') {
                    self.bump();
                    continue;
                }
                break;
            }
            self.skip_trivia();
            if self.peek() == Some(';') {
                self.bump();
                self.skip_trivia();
                // Tolerate dangling `;` before `.`/`]`.
                if matches!(self.peek(), Some('.') | Some(']') | None) {
                    break;
                }
                continue;
            }
            break;
        }
        Ok(())
    }

    fn directive(&mut self) -> Result<(), ParseError> {
        // `@prefix` / `PREFIX` (the `@`/keyword is detected by caller).
        let at_form = self.peek() == Some('@');
        if at_form {
            self.bump();
        }
        let kw = self.name(false).to_ascii_lowercase();
        match kw.as_str() {
            "prefix" => {
                self.skip_trivia();
                let prefix = self.name(false);
                self.expect(':')?;
                self.skip_trivia();
                if self.bump() != Some('<') {
                    return Err(self.err_msg("expected <iri> in prefix directive"));
                }
                let iri = self.iri_ref()?;
                self.prefixes.insert(prefix, iri);
                if at_form {
                    self.expect('.')?;
                }
                Ok(())
            }
            "base" => Err(self.err_msg(
                "@base / relative IRIs are outside the supported Turtle subset",
            )),
            other => Err(self.err_msg(format!("unknown directive @{other}"))),
        }
    }

    /// One top-level statement: a directive or a triples block with its
    /// terminating `.` (trivia already skipped, input not exhausted).
    fn statement(&mut self) -> Result<(), ParseError> {
        match self.peek() {
            Some('@') => self.directive(),
            _ if self.keyword_ahead("prefix") || self.keyword_ahead("base") => self.directive(),
            _ => {
                let subject = self.term(true)?;
                if subject.is_literal() {
                    return Err(self.err(ParseErrorKind::LiteralSubject));
                }
                self.predicate_object_list(&subject)?;
                self.expect('.')
            }
        }
    }

    /// After a failed statement, resynchronize at the next statement
    /// boundary: consume up to and including the next `.` at bracket
    /// depth 0 outside strings and comments (or to end of input).
    ///
    /// Returns the position of the first closing `]`/`)` seen at depth
    /// 0, if any. Such a bracket has no opener inside the skipped
    /// region: resynchronization keeps going past it (it belongs to the
    /// malformed statement being discarded), but the underflow is
    /// surfaced so lossy mode can report it instead of silently
    /// treating an unbalanced document as cleanly resynced.
    fn recover(&mut self) -> Option<ParseError> {
        let mut depth = 0usize;
        let mut underflow = None;
        while let Some(c) = self.peek() {
            match c {
                '#' => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                '"' | '\'' => self.skip_string(c),
                '[' | '(' => {
                    depth += 1;
                    self.bump();
                }
                ']' | ')' => {
                    if depth == 0 {
                        underflow
                            .get_or_insert_with(|| self.err(ParseErrorKind::UnbalancedBracket(c)));
                    } else {
                        depth -= 1;
                    }
                    self.bump();
                }
                '.' if depth == 0 => {
                    self.bump();
                    return underflow;
                }
                _ => {
                    self.bump();
                }
            }
        }
        underflow
    }

    /// Consumes a quoted section during [`Turtle::recover`]: short or
    /// long form delimited by `quote`, tolerating escapes. Unterminated
    /// short strings end at the newline, long ones at end of input.
    fn skip_string(&mut self, quote: char) {
        self.bump(); // opening quote
        if self.peek() == Some(quote) {
            if self.peek2() == Some(quote) {
                self.bump();
                self.bump();
                let mut run = 0;
                while let Some(c) = self.bump() {
                    if c == quote {
                        run += 1;
                        if run == 3 {
                            return;
                        }
                    } else {
                        run = 0;
                    }
                }
                return;
            }
            self.bump(); // empty short string
            return;
        }
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                c if c == quote || c == '\n' => return,
                _ => {}
            }
        }
    }
}

impl ParseErrorKind {
    /// Annotates an `ExpectedTerm` with what was actually seen.
    fn clone_with(&self, got: Option<char>) -> ParseErrorKind {
        match self {
            ParseErrorKind::ExpectedTerm(what) => ParseErrorKind::BadEscape(format!(
                "expected {what}, found {:?}",
                got.map(String::from).unwrap_or_else(|| "end of input".into())
            )),
            other => other.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> Vec<TermTriple> {
        parse_turtle_str(src).expect("valid turtle")
    }

    #[test]
    fn basic_statement() {
        let t = parse("<http://e/s> <http://e/p> <http://e/o> .");
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].0, Term::iri("http://e/s"));
    }

    #[test]
    fn prefixes_and_a() {
        let t = parse(
            "@prefix ex: <http://e/> .\nPREFIX foaf: <http://xmlns.com/foaf/0.1/>\n\
             ex:alice a foaf:Person .",
        );
        assert_eq!(
            t[0],
            (
                Term::iri("http://e/alice"),
                Term::iri(RDF_TYPE),
                Term::iri("http://xmlns.com/foaf/0.1/Person")
            )
        );
    }

    #[test]
    fn semicolons_and_commas() {
        let t = parse(
            "@prefix e: <http://e/> .\n\
             e:s e:p e:o1 , e:o2 ;\n    e:q e:o3 ;\n.",
        );
        assert_eq!(t.len(), 3);
        assert_eq!(t[0].0, t[1].0);
        assert_eq!(t[2].1, Term::iri("http://e/q"));
    }

    #[test]
    fn literal_forms() {
        let t = parse(
            r#"@prefix e: <http://e/> .
e:s e:str "plain" ;
    e:lang "bonjour"@fr ;
    e:typed "5"^^e:myType ;
    e:int 42 ;
    e:neg -7 ;
    e:dec 3.25 ;
    e:dbl 1.5e3 ;
    e:yes true ;
    e:no false ;
    e:sq 'single' ;
    e:long """line1
line2 "quoted" inside""" .
"#,
        );
        let objects: Vec<&Term> = t.iter().map(|(_, _, o)| o).collect();
        assert_eq!(objects[0], &Term::literal("plain"));
        assert_eq!(objects[1], &Term::lang_literal("bonjour", "fr"));
        assert_eq!(objects[2], &Term::typed_literal("5", "http://e/myType"));
        assert_eq!(objects[3], &Term::typed_literal("42", XSD_INTEGER));
        assert_eq!(objects[4], &Term::typed_literal("-7", XSD_INTEGER));
        assert_eq!(objects[5], &Term::typed_literal("3.25", XSD_DECIMAL));
        assert_eq!(objects[6], &Term::typed_literal("1.5e3", XSD_DOUBLE));
        assert_eq!(objects[7], &Term::typed_literal("true", XSD_BOOLEAN));
        assert_eq!(objects[8], &Term::typed_literal("false", XSD_BOOLEAN));
        assert_eq!(objects[9], &Term::literal("single"));
        assert_eq!(
            objects[10],
            &Term::literal("line1\nline2 \"quoted\" inside")
        );
    }

    #[test]
    fn blank_nodes_and_anonymous() {
        let t = parse(
            "@prefix e: <http://e/> .\n\
             _:b1 e:knows [ e:name \"anon\" ; e:age 3 ] .\n\
             [] e:p e:o .",
        );
        // Nested property lists emit before the containing triple:
        // X name anon, X age 3, _:b1 knows X, Y p o. Generated labels
        // are renamed to a plain `genid…` prefix after parsing.
        assert_eq!(t.len(), 4);
        let anon = &t[0].0;
        assert!(matches!(anon, Term::BlankNode(l) if l.starts_with("genid")));
        assert_eq!(&t[1].0, anon);
        assert_eq!(t[2].0, Term::blank("b1"));
        assert_eq!(&t[2].2, anon);
        assert!(matches!(&t[3].0, Term::BlankNode(l) if l.starts_with("genid")));
        assert_ne!(&t[3].0, anon);
    }

    #[test]
    fn generated_labels_avoid_document_labels() {
        // A document that already uses `genid…` labels pushes the
        // generated prefix further.
        let t = parse(
            "@prefix e: <http://e/> .\n_:genid0 e:p [ e:q e:o ] .",
        );
        assert_eq!(t[1].0, Term::blank("genid0"));
        let gen = &t[0].0;
        assert!(matches!(gen, Term::BlankNode(l) if l.starts_with("genidx")), "{gen:?}");
    }

    #[test]
    fn comments_everywhere() {
        let t = parse(
            "# header\n@prefix e: <http://e/> . # trailing\ne:s e:p # mid\n e:o .",
        );
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn errors_are_positioned_and_loud() {
        assert!(parse_turtle_str("@base <http://e/> .").is_err());
        assert!(parse_turtle_str("<http://e/s> <http://e/p> (1 2) .").is_err());
        assert!(parse_turtle_str("ex:undeclared <http://e/p> <http://e/o> .").is_err());
        assert!(parse_turtle_str("<http://e/s> <http://e/p> <http://e/o>").is_err()); // no dot
        assert!(parse_turtle_str("\"literal\" <http://e/p> <http://e/o> .").is_err());
        let e = parse_turtle_str("<http://e/s>\n  <http://e/p> @ .").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn lossy_recovery_reports_unbalanced_bracket() {
        // The malformed statement drags an orphan `]` along; recovery
        // must not silently clamp the depth and pretend the document
        // resynced cleanly — the underflow is its own reported skip.
        let src = "@prefix e: <http://e/> .\n\
                   e:s e:p @bogus ] .\n\
                   e:a e:b e:c .";
        let (t, report) = parse_turtle_str_lossy(
            src,
            crate::OnParseError::Skip { max_errors: 10 },
        )
        .expect("lossy parse succeeds");
        assert_eq!(t.len(), 1, "the well-formed trailing statement survives");
        assert_eq!(report.skipped, 2, "statement error + bracket underflow");
        assert!(
            report
                .errors
                .iter()
                .any(|e| matches!(e.kind, ParseErrorKind::UnbalancedBracket(']'))),
            "underflow must be surfaced: {:?}",
            report.errors
        );
    }

    #[test]
    fn lossy_unbalanced_bracket_counts_against_max_errors() {
        // With a budget of one skip, the second defect (the underflow)
        // is fatal.
        let src = "e:s e:p @bogus ] .\n<http://e/a> <http://e/b> <http://e/c> .";
        let err = parse_turtle_str_lossy(src, crate::OnParseError::Skip { max_errors: 1 })
            .expect_err("underflow exhausts the error budget");
        assert!(matches!(err.kind, ParseErrorKind::UnbalancedBracket(']')), "{err:?}");
    }

    #[test]
    fn lossy_balanced_recovery_reports_single_skip() {
        // Brackets opened inside the skipped region still cancel their
        // own closers — only true underflow is reported.
        let src = "@prefix e: <http://e/> .\n\
                   e:s e:p @bogus [ e:q e:r ] .\n\
                   e:a e:b e:c .";
        let (t, report) = parse_turtle_str_lossy(
            src,
            crate::OnParseError::Skip { max_errors: 10 },
        )
        .expect("lossy parse succeeds");
        assert_eq!(t.len(), 1);
        assert_eq!(report.skipped, 1, "no underflow to report");
    }

    #[test]
    fn roundtrip_with_ntriples_writer() {
        // Everything Turtle parses, the N-Triples writer + parser must
        // round-trip.
        let triples = parse(
            "@prefix e: <http://e/> .\n e:s e:p \"x\\ty\" , 42 , e:o ; a e:C .",
        );
        let mut buf = Vec::new();
        crate::writer::write_ntriples(&mut buf, &triples).unwrap();
        let back = crate::parser::parse_ntriples_str(&String::from_utf8(buf).unwrap()).unwrap();
        assert_eq!(back, triples);
    }
}
