//! N-Triples serialization.

use std::io::{self, Write};

use parj_dict::Term;

/// Writes one triple as a single N-Triples statement line.
///
/// `Term`'s `Display` implementation already performs N-Triples escaping
/// for literals; IRIs are written verbatim inside angle brackets.
pub fn write_triple<W: Write>(w: &mut W, s: &Term, p: &Term, o: &Term) -> io::Result<()> {
    writeln!(w, "{s} {p} {o} .")
}

/// Writes a whole sequence of triples.
pub fn write_ntriples<'a, W, I>(w: &mut W, triples: I) -> io::Result<()>
where
    W: Write,
    I: IntoIterator<Item = &'a (Term, Term, Term)>,
{
    for (s, p, o) in triples {
        write_triple(w, s, p, o)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_ntriples_str;

    #[test]
    fn roundtrip_through_writer() {
        let triples = vec![
            (
                Term::iri("http://e/s"),
                Term::iri("http://e/p"),
                Term::literal("line1\nline2 \"quoted\" back\\slash"),
            ),
            (
                Term::blank("b0"),
                Term::iri("http://e/p"),
                Term::lang_literal("héllo", "fr"),
            ),
            (
                Term::iri("http://e/s"),
                Term::iri("http://e/p"),
                Term::typed_literal("3.14", "http://www.w3.org/2001/XMLSchema#double"),
            ),
        ];
        let mut buf = Vec::new();
        write_ntriples(&mut buf, &triples).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let parsed = parse_ntriples_str(&text).unwrap();
        assert_eq!(parsed, triples);
    }
}
