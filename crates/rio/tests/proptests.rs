//! Property test: any triple of terms serializes to N-Triples and parses
//! back identically (writer/parser are mutual inverses).

use proptest::prelude::*;

use parj_dict::Term;
use parj_rio::{parse_ntriples_str, write_ntriples};

/// IRIs must avoid the characters N-Triples forbids raw; everything else
/// (unicode included) is fair game.
fn arb_iri() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-zA-Z0-9:/#?&=._~%éλ-]{1,32}").unwrap()
}

fn arb_lexical() -> impl Strategy<Value = String> {
    // Includes quotes, backslashes, newlines, tabs, unicode.
    proptest::string::string_regex("[ -~\t\n\réλ😀]{0,32}").unwrap()
}

fn arb_subject() -> impl Strategy<Value = Term> {
    prop_oneof![
        arb_iri().prop_map(Term::iri),
        proptest::string::string_regex("[A-Za-z][A-Za-z0-9]{0,10}")
            .unwrap()
            .prop_map(Term::blank),
    ]
}

fn arb_object() -> impl Strategy<Value = Term> {
    prop_oneof![
        arb_iri().prop_map(Term::iri),
        proptest::string::string_regex("[A-Za-z][A-Za-z0-9]{0,10}")
            .unwrap()
            .prop_map(Term::blank),
        arb_lexical().prop_map(Term::literal),
        (arb_lexical(), proptest::string::string_regex("[a-z]{2,3}(-[A-Z]{2})?").unwrap())
            .prop_map(|(l, g)| Term::lang_literal(l, g)),
        (arb_lexical(), arb_iri()).prop_map(|(l, d)| Term::typed_literal(l, d)),
    ]
}

proptest! {
    #[test]
    fn write_parse_roundtrip(
        triples in proptest::collection::vec(
            (arb_subject(), arb_iri().prop_map(Term::iri), arb_object()), 0..20)
    ) {
        let mut buf = Vec::new();
        write_ntriples(&mut buf, &triples).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let parsed = parse_ntriples_str(&text).unwrap();
        prop_assert_eq!(parsed, triples);
    }
}
