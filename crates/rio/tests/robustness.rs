//! Robustness: no input — however malformed — may panic the parsers;
//! they must return a positioned error or a parse.

use proptest::prelude::*;

use parj_rio::{
    parse_ntriples_str, parse_ntriples_str_lossy, parse_turtle_str, parse_turtle_str_lossy,
    LoadReport, OnParseError,
};

const SKIP_ALL: OnParseError = OnParseError::Skip {
    max_errors: usize::MAX,
};

/// Lossy N-Triples parsing of well-formed lines interleaved with
/// malformed ones: every good line survives, every bad line is skipped
/// with an accurate line-number diagnostic.
#[test]
fn lossy_ntriples_interleaved_diagnostics() {
    let good = [
        "<http://e/a> <http://e/p> <http://e/b> .",
        "<http://e/c> <http://e/p> \"lit\"@en .",
        "_:b0 <http://e/p> \"42\"^^<http://www.w3.org/2001/XMLSchema#int> .",
    ];
    let bad = [
        "<http://e/unclosed <http://e/p> <http://e/x> .",
        "\"literal\" <http://e/p> <http://e/x> .",
        "<http://e/s> <http://e/p> <http://e/o>", // missing dot
        "total garbage",
    ];
    // Interleave: good, bad, good, bad, good, bad, bad.
    let doc = [
        good[0], bad[0], good[1], bad[1], good[2], bad[2], bad[3],
    ]
    .join("\n");
    let (triples, report) = parse_ntriples_str_lossy(&doc, SKIP_ALL).unwrap();
    assert_eq!(triples.len(), 3);
    assert_eq!(report.loaded, 3);
    assert_eq!(report.skipped, 4);
    let lines: Vec<usize> = report.errors.iter().map(|e| e.line).collect();
    assert_eq!(lines, vec![2, 4, 6, 7]);
    // Strict mode on the same document stops at the first bad line.
    assert_eq!(parse_ntriples_str(&doc).unwrap_err().line, 2);
}

/// `max_errors` is a hard ceiling: the error that crosses it aborts the
/// load and is the one reported.
#[test]
fn lossy_ntriples_max_errors_overflow() {
    let mut doc = String::new();
    for i in 0..10 {
        doc.push_str(&format!("<http://e/s{i}> <http://e/p> <http://e/o> .\n"));
        doc.push_str("broken\n"); // even lines 2,4,6,… are bad
    }
    let err = parse_ntriples_str_lossy(&doc, OnParseError::Skip { max_errors: 3 }).unwrap_err();
    assert_eq!(err.line, 8); // 4th bad line crosses the budget of 3
    // With exactly enough budget the whole document loads.
    let (triples, report) =
        parse_ntriples_str_lossy(&doc, OnParseError::Skip { max_errors: 10 }).unwrap();
    assert_eq!(triples.len(), 10);
    assert_eq!(report.skipped, 10);
}

/// Lossy Turtle drops a malformed statement whole — including triples
/// it had already produced — and resynchronizes at the next `.`.
#[test]
fn lossy_turtle_rolls_back_partial_statements() {
    let doc = "@prefix e: <http://e/> .\n\
               e:a e:p e:b .\n\
               e:bad e:q e:x ; e:r ( 1 2 ) .\n\
               e:c e:p e:d .\n";
    // The collection `( … )` is unsupported: statement 3 fails after
    // already emitting (e:bad, e:q, e:x). Lossy mode must not leak it.
    let (triples, report) = parse_turtle_str_lossy(doc, SKIP_ALL).unwrap();
    assert_eq!(report.skipped, 1);
    assert_eq!(triples.len(), 2);
    assert!(triples
        .iter()
        .all(|(s, _, _)| s.as_iri() != Some("http://e/bad")));
    // Strict mode refuses the document outright.
    assert!(parse_turtle_str(doc).is_err());
}

/// A malformed `@prefix` directive is skippable too, and statements
/// using the missing prefix then fail individually without cascading
/// into a fatal error.
#[test]
fn lossy_turtle_survives_bad_directive() {
    let doc = "@prefix e: <http://e/> .\n\
               @prefix broken <no-close .\n\
               e:a e:p e:b .\n";
    let (triples, report) = parse_turtle_str_lossy(doc, SKIP_ALL).unwrap();
    assert_eq!(triples.len(), 1);
    assert!(report.skipped >= 1);
}

/// Diagnostics recording is capped, counting is exact.
#[test]
fn lossy_ntriples_caps_recorded_errors() {
    let n = LoadReport::MAX_RECORDED_ERRORS + 7;
    let doc = "junk\n".repeat(n);
    let (triples, report) = parse_ntriples_str_lossy(&doc, SKIP_ALL).unwrap();
    assert!(triples.is_empty());
    assert_eq!(report.skipped, n);
    assert_eq!(report.errors.len(), LoadReport::MAX_RECORDED_ERRORS);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary unicode garbage never panics the N-Triples parser.
    #[test]
    fn ntriples_never_panics(input in "\\PC*") {
        let _ = parse_ntriples_str(&input);
    }

    /// Arbitrary garbage with RDF-ish ingredients never panics.
    #[test]
    fn ntriples_never_panics_structured(
        parts in proptest::collection::vec(
            prop_oneof![
                Just("<http://e/x>".to_string()),
                Just("_:b".to_string()),
                Just("\"lit\"".to_string()),
                Just(".".to_string()),
                Just("\\u12".to_string()),
                Just("@en".to_string()),
                Just("^^".to_string()),
                Just("<".to_string()),
                Just("\"".to_string()),
                "[ -~]{0,6}",
            ],
            0..12,
        )
    ) {
        let line = parts.join(" ");
        let _ = parse_ntriples_str(&line);
    }

    /// Unbounded skip mode never fails on pure parse garbage (only
    /// I/O errors can abort it) and never panics.
    #[test]
    fn ntriples_lossy_never_fails(input in "\\PC*") {
        let r = parse_ntriples_str_lossy(&input, SKIP_ALL);
        prop_assert!(r.is_ok());
    }

    /// Lossy Turtle recovery terminates without panicking on garbage,
    /// and unbounded skip mode never fails.
    #[test]
    fn turtle_lossy_never_fails(input in "\\PC*") {
        let r = parse_turtle_str_lossy(&input, SKIP_ALL);
        prop_assert!(r.is_ok());
    }

    /// On documents strict mode accepts, lossy mode returns identical
    /// triples and an empty skip report.
    #[test]
    fn lossy_agrees_with_strict_on_clean_input(
        parts in proptest::collection::vec(
            prop_oneof![
                Just("<http://e/s> <http://e/p> <http://e/o> .".to_string()),
                Just("_:b <http://e/p> \"v\"@en .".to_string()),
                Just("# comment".to_string()),
                Just("".to_string()),
            ],
            0..8,
        )
    ) {
        let doc = parts.join("\n");
        let strict = parse_ntriples_str(&doc).unwrap();
        let (lossy, report) = parse_ntriples_str_lossy(&doc, SKIP_ALL).unwrap();
        prop_assert_eq!(strict, lossy);
        prop_assert_eq!(report.skipped, 0);
        prop_assert!(report.errors.is_empty());
    }

    /// Arbitrary unicode garbage never panics the Turtle parser.
    #[test]
    fn turtle_never_panics(input in "\\PC*") {
        let _ = parse_turtle_str(&input);
    }

    /// Turtle-flavoured fragments never panic.
    #[test]
    fn turtle_never_panics_structured(
        parts in proptest::collection::vec(
            prop_oneof![
                Just("@prefix e: <http://e/> .".to_string()),
                Just("e:s".to_string()),
                Just("a".to_string()),
                Just(";".to_string()),
                Just(",".to_string()),
                Just(".".to_string()),
                Just("[".to_string()),
                Just("]".to_string()),
                Just("(".to_string()),
                Just("\"\"\"x".to_string()),
                Just("'''".to_string()),
                Just("123.".to_string()),
                Just("1e".to_string()),
                Just("true".to_string()),
                "[ -~]{0,6}",
            ],
            0..16,
        )
    ) {
        let doc = parts.join(" ");
        let _ = parse_turtle_str(&doc);
    }

    /// Whatever Turtle accepts must be representable and re-parseable
    /// through the N-Triples writer (cross-format consistency).
    #[test]
    fn turtle_accepts_implies_ntriples_roundtrip(
        parts in proptest::collection::vec(
            prop_oneof![
                Just("e:s e:p e:o .".to_string()),
                Just("e:s a e:C ; e:q 4 .".to_string()),
                Just("e:x e:r \"v\"@en , 't' .".to_string()),
                Just("_:b e:p [ e:q e:o ] .".to_string()),
            ],
            0..6,
        )
    ) {
        let doc = format!("@prefix e: <http://e/> .\n{}", parts.join("\n"));
        if let Ok(triples) = parse_turtle_str(&doc) {
            let mut buf = Vec::new();
            parj_rio::write_ntriples(&mut buf, &triples).unwrap();
            let text = String::from_utf8(buf).unwrap();
            let back = parse_ntriples_str(&text).unwrap();
            prop_assert_eq!(back, triples);
        }
    }
}
