//! Robustness: no input — however malformed — may panic the parsers;
//! they must return a positioned error or a parse.

use proptest::prelude::*;

use parj_rio::{parse_ntriples_str, parse_turtle_str};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary unicode garbage never panics the N-Triples parser.
    #[test]
    fn ntriples_never_panics(input in "\\PC*") {
        let _ = parse_ntriples_str(&input);
    }

    /// Arbitrary garbage with RDF-ish ingredients never panics.
    #[test]
    fn ntriples_never_panics_structured(
        parts in proptest::collection::vec(
            prop_oneof![
                Just("<http://e/x>".to_string()),
                Just("_:b".to_string()),
                Just("\"lit\"".to_string()),
                Just(".".to_string()),
                Just("\\u12".to_string()),
                Just("@en".to_string()),
                Just("^^".to_string()),
                Just("<".to_string()),
                Just("\"".to_string()),
                "[ -~]{0,6}",
            ],
            0..12,
        )
    ) {
        let line = parts.join(" ");
        let _ = parse_ntriples_str(&line);
    }

    /// Arbitrary unicode garbage never panics the Turtle parser.
    #[test]
    fn turtle_never_panics(input in "\\PC*") {
        let _ = parse_turtle_str(&input);
    }

    /// Turtle-flavoured fragments never panic.
    #[test]
    fn turtle_never_panics_structured(
        parts in proptest::collection::vec(
            prop_oneof![
                Just("@prefix e: <http://e/> .".to_string()),
                Just("e:s".to_string()),
                Just("a".to_string()),
                Just(";".to_string()),
                Just(",".to_string()),
                Just(".".to_string()),
                Just("[".to_string()),
                Just("]".to_string()),
                Just("(".to_string()),
                Just("\"\"\"x".to_string()),
                Just("'''".to_string()),
                Just("123.".to_string()),
                Just("1e".to_string()),
                Just("true".to_string()),
                "[ -~]{0,6}",
            ],
            0..16,
        )
    ) {
        let doc = parts.join(" ");
        let _ = parse_turtle_str(&doc);
    }

    /// Whatever Turtle accepts must be representable and re-parseable
    /// through the N-Triples writer (cross-format consistency).
    #[test]
    fn turtle_accepts_implies_ntriples_roundtrip(
        parts in proptest::collection::vec(
            prop_oneof![
                Just("e:s e:p e:o .".to_string()),
                Just("e:s a e:C ; e:q 4 .".to_string()),
                Just("e:x e:r \"v\"@en , 't' .".to_string()),
                Just("_:b e:p [ e:q e:o ] .".to_string()),
            ],
            0..6,
        )
    ) {
        let doc = format!("@prefix e: <http://e/> .\n{}", parts.join("\n"));
        if let Ok(triples) = parse_turtle_str(&doc) {
            let mut buf = Vec::new();
            parj_rio::write_ntriples(&mut buf, &triples).unwrap();
            let text = String::from_utf8(buf).unwrap();
            let back = parse_ntriples_str(&text).unwrap();
            prop_assert_eq!(back, triples);
        }
    }
}
