//! Admission control: the in-flight permit gate, per-client token
//! buckets, and the `Retry-After` latency window.
//!
//! The design rule is *shed, don't queue*: a request that cannot get a
//! permit is answered 429 immediately. Queuing would hide overload
//! behind growing latency and unbounded memory; shedding keeps the
//! server's behavior flat — rejected requests cost microseconds, and
//! accepted requests see the same engine contention regardless of how
//! many clients are knocking.

use std::collections::HashMap;
use std::net::IpAddr;
use std::time::Instant;

use parj_sync::atomic::{AtomicUsize, Ordering};
use parj_sync::{Arc, LockLevel, OrderedMutex};

use parj_obs::ServerMetrics;

/// A bounded semaphore over query execution slots.
///
/// `try_acquire` never blocks — the caller sheds on `None`. The permit
/// is RAII: dropping it (normal return, error, or panic unwinding)
/// frees the slot and decrements the in-flight gauge.
#[derive(Debug)]
pub struct InflightGate {
    permits: usize,
    active: AtomicUsize,
}

impl InflightGate {
    /// A gate with `permits` slots (at least one).
    pub fn new(permits: usize) -> Self {
        InflightGate {
            permits: permits.max(1),
            active: AtomicUsize::new(0),
        }
    }

    /// Total slots.
    pub fn permits(&self) -> usize {
        self.permits
    }

    /// Tries to take a slot; `None` means shed. The returned permit
    /// maintains the `parj_server_inflight` gauge.
    pub fn try_acquire(self: &Arc<Self>, metrics: &Arc<ServerMetrics>) -> Option<Permit> {
        // ordering: Relaxed — the permit count guards no other memory;
        // queries synchronize through the engine's own lock. The CAS
        // only needs atomicity of the counter itself.
        let acquired = self
            .active
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                (n < self.permits).then_some(n + 1)
            })
            .is_ok();
        if !acquired {
            return None;
        }
        metrics.permit_acquired();
        Some(Permit {
            gate: Arc::clone(self),
            metrics: Arc::clone(metrics),
        })
    }

    /// Slots currently held.
    pub fn active(&self) -> usize {
        // ordering: Relaxed — observer read; staleness is acceptable.
        self.active.load(Ordering::Relaxed)
    }
}

/// RAII permit from [`InflightGate::try_acquire`].
#[derive(Debug)]
pub struct Permit {
    gate: Arc<InflightGate>,
    metrics: Arc<ServerMetrics>,
}

impl Drop for Permit {
    fn drop(&mut self) {
        // ordering: Relaxed — see InflightGate::try_acquire.
        self.gate.active.fetch_sub(1, Ordering::Relaxed);
        self.metrics.permit_released();
    }
}

/// Per-client request quota: a classic token bucket.
#[derive(Debug, Clone, Copy)]
pub struct Quota {
    /// Bucket capacity (requests that may burst at once).
    pub burst: u32,
    /// Refill rate, tokens per second.
    pub per_sec: f64,
}

#[derive(Debug)]
struct Bucket {
    tokens: f64,
    refreshed: Instant,
}

/// Token buckets keyed by peer IP.
///
/// The table is bounded: past [`QuotaTable::MAX_CLIENTS`] distinct
/// addresses, stale full buckets are evicted first and, failing that,
/// new clients are admitted unmetered — an attacker rotating source
/// addresses must not be able to grow server memory without bound.
#[derive(Debug)]
pub struct QuotaTable {
    quota: Quota,
    buckets: OrderedMutex<HashMap<IpAddr, Bucket>>,
}

impl QuotaTable {
    /// Bound on tracked client addresses.
    pub const MAX_CLIENTS: usize = 4096;

    /// An empty table enforcing `quota` per client.
    pub fn new(quota: Quota) -> Self {
        QuotaTable {
            quota,
            buckets: OrderedMutex::new(
                LockLevel::AdmissionQuota,
                "admission.quota_buckets",
                HashMap::new(),
            ),
        }
    }

    /// Takes one token from `ip`'s bucket; `false` means the client is
    /// over quota and the request must be rejected.
    pub fn try_take(&self, ip: IpAddr, now: Instant) -> bool {
        let burst = f64::from(self.quota.burst.max(1));
        let mut buckets = self.buckets.lock();
        if buckets.len() >= Self::MAX_CLIENTS && !buckets.contains_key(&ip) {
            // Evict buckets that have fully refilled — their owners are
            // idle and indistinguishable from new clients anyway.
            let per_sec = self.quota.per_sec;
            buckets.retain(|_, b| {
                let refilled =
                    b.tokens + now.saturating_duration_since(b.refreshed).as_secs_f64() * per_sec;
                refilled < burst
            });
            if buckets.len() >= Self::MAX_CLIENTS {
                // Table still full of active clients: admit unmetered
                // rather than hard-fail new clients on table pressure.
                return true;
            }
        }
        let bucket = buckets.entry(ip).or_insert(Bucket {
            tokens: burst,
            refreshed: now,
        });
        let elapsed = now.saturating_duration_since(bucket.refreshed).as_secs_f64();
        bucket.tokens = (bucket.tokens + elapsed * self.quota.per_sec).min(burst);
        bucket.refreshed = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// A moving window of recent accepted-query latencies, feeding the
/// `Retry-After` hint on shed responses: when the server is slow, tell
/// clients to back off longer.
#[derive(Debug)]
pub struct LatencyWindow {
    samples: OrderedMutex<Window>,
}

#[derive(Debug)]
struct Window {
    ring: Vec<u64>,
    next: usize,
    filled: usize,
}

/// Samples kept in the moving window.
const WINDOW: usize = 64;
/// `Retry-After` clamp bounds, seconds.
const RETRY_AFTER_MIN_SECS: u64 = 1;
/// Upper clamp bound, seconds.
const RETRY_AFTER_MAX_SECS: u64 = 30;

impl Default for LatencyWindow {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyWindow {
    /// An empty window.
    pub fn new() -> Self {
        LatencyWindow {
            samples: OrderedMutex::new(
                LockLevel::AdmissionWindow,
                "admission.latency_window",
                Window {
                    ring: vec![0; WINDOW],
                    next: 0,
                    filled: 0,
                },
            ),
        }
    }

    /// Records one accepted query's wall time, microseconds.
    pub fn record(&self, micros: u64) {
        let mut w = self.samples.lock();
        let slot = w.next;
        w.ring[slot] = micros;
        w.next = (w.next + 1) % WINDOW;
        w.filled = (w.filled + 1).min(WINDOW);
    }

    /// Mean latency over the window, microseconds (0 when empty).
    pub fn mean_micros(&self) -> u64 {
        let w = self.samples.lock();
        if w.filled == 0 {
            return 0;
        }
        let sum: u64 = w.ring[..w.filled].iter().sum();
        sum / w.filled as u64
    }

    /// The `Retry-After` hint in whole seconds: the window's mean
    /// latency rounded up, clamped to `1..=30`. An empty window (cold
    /// server) answers the minimum.
    pub fn retry_after_secs(&self) -> u64 {
        let mean = self.mean_micros();
        let secs = mean.div_ceil(1_000_000);
        secs.clamp(RETRY_AFTER_MIN_SECS, RETRY_AFTER_MAX_SECS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn gate_sheds_past_permits_and_releases_on_drop() {
        let metrics = Arc::new(ServerMetrics::new());
        let gate = Arc::new(InflightGate::new(2));
        let p1 = gate.try_acquire(&metrics).unwrap();
        let _p2 = gate.try_acquire(&metrics).unwrap();
        assert!(gate.try_acquire(&metrics).is_none());
        assert_eq!(gate.active(), 2);
        assert_eq!(metrics.inflight(), 2);
        drop(p1);
        assert_eq!(gate.active(), 1);
        assert_eq!(metrics.inflight(), 1);
        assert!(gate.try_acquire(&metrics).is_some());
    }

    #[test]
    fn zero_permits_clamps_to_one() {
        let metrics = Arc::new(ServerMetrics::new());
        let gate = Arc::new(InflightGate::new(0));
        assert_eq!(gate.permits(), 1);
        assert!(gate.try_acquire(&metrics).is_some());
    }

    #[test]
    fn token_bucket_limits_bursts_and_refills() {
        let table = QuotaTable::new(Quota { burst: 2, per_sec: 1.0 });
        let ip: IpAddr = "10.0.0.1".parse().unwrap();
        let t0 = Instant::now();
        assert!(table.try_take(ip, t0));
        assert!(table.try_take(ip, t0));
        assert!(!table.try_take(ip, t0), "burst exhausted");
        // One second later one token has refilled.
        let t1 = t0 + Duration::from_secs(1);
        assert!(table.try_take(ip, t1));
        assert!(!table.try_take(ip, t1));
        // A different client has its own bucket.
        let other: IpAddr = "10.0.0.2".parse().unwrap();
        assert!(table.try_take(other, t1));
    }

    #[test]
    fn retry_after_clamps_to_lower_bound() {
        let w = LatencyWindow::new();
        // Empty window: minimum.
        assert_eq!(w.retry_after_secs(), RETRY_AFTER_MIN_SECS);
        // Sub-second queries still answer at least 1s.
        for _ in 0..10 {
            w.record(5_000); // 5ms
        }
        assert_eq!(w.retry_after_secs(), RETRY_AFTER_MIN_SECS);
    }

    #[test]
    fn retry_after_clamps_to_upper_bound() {
        let w = LatencyWindow::new();
        for _ in 0..WINDOW {
            w.record(120_000_000); // 120s each
        }
        assert_eq!(w.retry_after_secs(), RETRY_AFTER_MAX_SECS);
    }

    #[test]
    fn retry_after_tracks_the_mean_between_bounds() {
        let w = LatencyWindow::new();
        for _ in 0..WINDOW {
            w.record(2_500_000); // 2.5s each
        }
        assert_eq!(w.mean_micros(), 2_500_000);
        // ceil(2.5s) = 3s, inside the clamp.
        assert_eq!(w.retry_after_secs(), 3);
        // The window is moving: flooding it with fast queries pulls the
        // hint back down to the floor.
        for _ in 0..WINDOW {
            w.record(1_000); // 1ms
        }
        assert_eq!(w.retry_after_secs(), RETRY_AFTER_MIN_SECS);
    }
}
