//! Bounded HTTP/1.1 request parsing and response writing.
//!
//! The parser is written for a hostile network: every dimension of the
//! request is capped (request line, header block, body), every cap maps
//! to a specific status (431 headers, 413 body, 400 malformed, 408 slow
//! client), and nothing the peer sends can make it allocate without
//! bound, loop without progress, or panic. It supports exactly what the
//! SPARQL Protocol needs — `GET`/`POST`/`HEAD`, `Content-Length`
//! bodies, one request per connection (`Connection: close` on every
//! response) — and rejects the rest deliberately.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Request methods the router distinguishes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Method {
    /// `GET`
    Get,
    /// `POST`
    Post,
    /// `HEAD` (answered like `GET` with an empty body)
    Head,
    /// Anything else, kept verbatim for the 405 response.
    Other(String),
}

/// A parsed request: method, split target, lowercased headers, body.
#[derive(Debug)]
pub struct Request {
    /// The request method.
    pub method: Method,
    /// Decoded path component of the target (no query string).
    pub path: String,
    /// Decoded `key=value` pairs from the query string, in order.
    pub params: Vec<(String, String)>,
    /// Headers with lowercased names, verbatim values.
    pub headers: Vec<(String, String)>,
    /// The request body (empty unless `POST` with `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// First value of query parameter `name`, if present.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be parsed; each variant is one response
/// status (except [`HttpError::Io`], where the connection is already
/// unusable and no response can be written).
#[derive(Debug)]
pub enum HttpError {
    /// 400 — malformed request line, header, encoding, or truncation.
    BadRequest(String),
    /// 431 — request line + header block exceeded the configured cap.
    HeadersTooLarge,
    /// 413 — declared or actual body exceeded the configured cap.
    PayloadTooLarge,
    /// 411 — `POST` without a `Content-Length`.
    LengthRequired,
    /// 408 — the client was too slow producing its request.
    Timeout,
    /// The socket died (reset, closed before any byte); nothing to say.
    Io(io::Error),
}

impl HttpError {
    /// The response status for this error, `None` when the connection
    /// is beyond responding.
    pub fn status(&self) -> Option<u16> {
        match self {
            HttpError::BadRequest(_) => Some(400),
            HttpError::HeadersTooLarge => Some(431),
            HttpError::PayloadTooLarge => Some(413),
            HttpError::LengthRequired => Some(411),
            HttpError::Timeout => Some(408),
            HttpError::Io(_) => None,
        }
    }

    /// Human-readable body line for the error response.
    pub fn message(&self) -> String {
        match self {
            HttpError::BadRequest(m) => format!("bad request: {m}"),
            HttpError::HeadersTooLarge => "request header fields too large".into(),
            HttpError::PayloadTooLarge => "payload too large".into(),
            HttpError::LengthRequired => "length required".into(),
            HttpError::Timeout => "request timeout".into(),
            HttpError::Io(e) => format!("i/o error: {e}"),
        }
    }
}

/// Parser caps and pacing.
#[derive(Debug, Clone)]
pub struct Limits {
    /// Cap on request line + header block, bytes.
    pub max_header_bytes: usize,
    /// Cap on the request body, bytes.
    pub max_body_bytes: usize,
    /// Total time the client gets to deliver its request.
    pub read_timeout: Duration,
}

/// True when an I/O error is a read-timeout expiry.
fn is_timeout(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

/// Reads and parses one request from `stream` under `limits`.
pub fn read_request(stream: &mut TcpStream, limits: &Limits) -> Result<Request, HttpError> {
    let deadline = Instant::now() + limits.read_timeout;
    // Header block: accumulate until CRLFCRLF, bounded. Byte-at-a-time
    // via small chunks is fine — header blocks are tiny and the cap is
    // what matters.
    let mut buf: Vec<u8> = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    let header_end = loop {
        if let Some(pos) = find_double_crlf(&buf) {
            break pos;
        }
        if buf.len() > limits.max_header_bytes {
            return Err(HttpError::HeadersTooLarge);
        }
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(HttpError::Timeout);
        }
        stream
            .set_read_timeout(Some(remaining))
            .map_err(HttpError::Io)?;
        match stream.read(&mut chunk) {
            Ok(0) => {
                if buf.is_empty() {
                    // Clean close before any byte: not a request at all.
                    return Err(HttpError::Io(io::ErrorKind::UnexpectedEof.into()));
                }
                return Err(HttpError::BadRequest("truncated request head".into()));
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if is_timeout(&e) => return Err(HttpError::Timeout),
            Err(e) => return Err(HttpError::Io(e)),
        }
    };
    if header_end > limits.max_header_bytes {
        return Err(HttpError::HeadersTooLarge);
    }
    let head = std::str::from_utf8(&buf[..header_end])
        .map_err(|_| HttpError::BadRequest("non-UTF-8 request head".into()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::BadRequest("empty request head".into()))?;
    let (method, path, params) = parse_request_line(request_line)?;
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::BadRequest(format!("malformed header line: {line:?}")))?;
        if name.is_empty() || name.contains(|c: char| c.is_control() || c == ' ') {
            return Err(HttpError::BadRequest(format!("malformed header name: {name:?}")));
        }
        let value = value.trim();
        if value.contains(|c: char| c.is_control()) {
            return Err(HttpError::BadRequest("control character in header value".into()));
        }
        headers.push((name.to_ascii_lowercase(), value.to_string()));
    }

    // Body (POST only; GET/HEAD bodies are rejected as malformed
    // rather than silently ignored, since nothing here accepts one).
    let mut body = buf[header_end + 4..].to_vec();
    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| HttpError::BadRequest(format!("bad content-length: {v:?}")))
        })
        .transpose()?;
    match (&method, content_length) {
        (Method::Post, None) => return Err(HttpError::LengthRequired),
        (Method::Post, Some(len)) => {
            if len > limits.max_body_bytes {
                return Err(HttpError::PayloadTooLarge);
            }
            if body.len() > len {
                return Err(HttpError::BadRequest("body longer than content-length".into()));
            }
            while body.len() < len {
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    return Err(HttpError::Timeout);
                }
                stream
                    .set_read_timeout(Some(remaining))
                    .map_err(HttpError::Io)?;
                match stream.read(&mut chunk) {
                    Ok(0) => return Err(HttpError::BadRequest("truncated body".into())),
                    Ok(n) => body.extend_from_slice(&chunk[..n]),
                    Err(e) if is_timeout(&e) => return Err(HttpError::Timeout),
                    Err(e) => return Err(HttpError::Io(e)),
                }
            }
            if body.len() > len {
                return Err(HttpError::BadRequest("body longer than content-length".into()));
            }
        }
        (_, _) => {
            if content_length.unwrap_or(0) != 0 || !body.is_empty() {
                return Err(HttpError::BadRequest("unexpected body".into()));
            }
        }
    }

    Ok(Request {
        method,
        path,
        params,
        headers,
        body,
    })
}

/// Position of the first `\r\n\r\n`, if complete.
fn find_double_crlf(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Decoded key/value parameters from a query string or form body.
pub type Params = Vec<(String, String)>;

fn parse_request_line(line: &str) -> Result<(Method, String, Params), HttpError> {
    let mut parts = line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(HttpError::BadRequest(format!("malformed request line: {line:?}"))),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest(format!("unsupported version: {version:?}")));
    }
    let method = match method {
        "GET" => Method::Get,
        "POST" => Method::Post,
        "HEAD" => Method::Head,
        other => {
            if !other.chars().all(|c| c.is_ascii_uppercase()) {
                return Err(HttpError::BadRequest(format!("malformed method: {other:?}")));
            }
            Method::Other(other.to_string())
        }
    };
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let path_bytes = percent_decode(raw_path)
        .ok_or_else(|| HttpError::BadRequest("bad percent-encoding in path".into()))?;
    let path = String::from_utf8(path_bytes)
        .map_err(|_| HttpError::BadRequest("non-UTF-8 path".into()))?;
    let params = match raw_query {
        Some(q) => parse_urlencoded(q.as_bytes())?,
        None => Vec::new(),
    };
    Ok((method, path, params))
}

/// Parses `application/x-www-form-urlencoded` content (also the query
/// string): `+` means space, `%XX` percent-escapes, pairs split on `&`.
/// Decoded bytes must be UTF-8 — a query string smuggling invalid UTF-8
/// is a 400, never a panic or lossy replacement.
pub fn parse_urlencoded(raw: &[u8]) -> Result<Vec<(String, String)>, HttpError> {
    let raw = std::str::from_utf8(raw)
        .map_err(|_| HttpError::BadRequest("non-UTF-8 form data".into()))?;
    let mut out = Vec::new();
    for pair in raw.split('&') {
        if pair.is_empty() {
            continue;
        }
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        let decode = |s: &str| -> Result<String, HttpError> {
            let plus_decoded = s.replace('+', " ");
            let bytes = percent_decode(&plus_decoded)
                .ok_or_else(|| HttpError::BadRequest(format!("bad percent-encoding: {s:?}")))?;
            String::from_utf8(bytes)
                .map_err(|_| HttpError::BadRequest(format!("non-UTF-8 parameter: {s:?}")))
        };
        out.push((decode(k)?, decode(v)?));
    }
    Ok(out)
}

/// Decodes `%XX` escapes; `None` on a truncated or non-hex escape.
fn percent_decode(s: &str) -> Option<Vec<u8>> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hi = hex_val(*bytes.get(i + 1)?)?;
            let lo = hex_val(*bytes.get(i + 2)?)?;
            out.push(hi << 4 | lo);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    Some(out)
}

fn hex_val(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

/// A response ready to serialize: status, content type, extra headers,
/// body.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Extra headers (e.g. `Retry-After`), name/value verbatim.
    pub extra_headers: Vec<(String, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A `text/plain` response with the given status and body line.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        let mut body = body.into();
        if !body.ends_with('\n') {
            body.push('\n');
        }
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            extra_headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: String) -> Self {
        self.extra_headers.push((name.to_string(), value));
        self
    }
}

/// The reason phrase for a status code.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        411 => "Length Required",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Writes `resp` to `stream` (`Connection: close`; the caller closes).
/// `head_only` omits the body for `HEAD` requests while keeping the
/// headers identical.
pub fn write_response(
    stream: &mut TcpStream,
    resp: &Response,
    head_only: bool,
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        resp.status,
        reason_phrase(resp.status),
        resp.content_type,
        resp.body.len()
    );
    for (k, v) in &resp.extra_headers {
        head.push_str(k);
        head.push_str(": ");
        head.push_str(v);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    if !head_only {
        stream.write_all(&resp.body)?;
    }
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("a%20b"), Some(b"a b".to_vec()));
        assert_eq!(percent_decode("a%2"), None);
        assert_eq!(percent_decode("a%zz"), None);
        assert_eq!(percent_decode("plain"), Some(b"plain".to_vec()));
    }

    #[test]
    fn urlencoded_pairs() {
        let pairs = parse_urlencoded(b"query=SELECT+%2A&timeout=5").unwrap();
        assert_eq!(
            pairs,
            vec![
                ("query".to_string(), "SELECT *".to_string()),
                ("timeout".to_string(), "5".to_string())
            ]
        );
    }

    #[test]
    fn urlencoded_rejects_invalid_utf8() {
        // %FF is not valid UTF-8 on its own.
        assert!(matches!(
            parse_urlencoded(b"query=%FF%FE"),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn request_line_rejects_garbage() {
        assert!(parse_request_line("GET /x HTTP/1.1").is_ok());
        for bad in [
            "GET",
            "GET /x",
            "GET /x HTTP/2.0",
            "GET /x HTTP/1.1 extra",
            " /x HTTP/1.1",
            "G3T /x HTTP/1.1",
        ] {
            assert!(parse_request_line(bad).is_err(), "{bad:?} should be rejected");
        }
    }
}
