//! # parj-server — resilient SPARQL-over-HTTP serving for PARJ
//!
//! A dependency-free (std `TcpListener`, thread-per-connection) SPARQL
//! Protocol endpoint over [`SharedParj`]. Queries arrive via `GET` or
//! `POST /sparql`, run through the engine's [`parj_core::QueryRequest`]
//! builder — so deadlines, row budgets, cache participation, and
//! cancellation are the engine's own, not reimplemented — and stream
//! back as SPARQL results JSON or TSV.
//!
//! The serving layer is built robustness-first:
//!
//! * **Bounded everything.** A fixed permit gate caps in-flight
//!   queries; past it, requests are *shed* with `429` + `Retry-After`
//!   (derived from recent query latency) — there is no queue to grow.
//!   The acceptor itself bounds concurrent connections, and the HTTP
//!   parser caps header and body sizes.
//! * **Per-client quotas.** An optional token bucket per peer address
//!   rejects chatty clients with `429` before they reach the gate.
//! * **Cancel-on-disconnect.** Each admitted query's [`CancelToken`]
//!   is tied to its socket: a watcher notices the peer closing and
//!   cancels the run, freeing its workers for live clients.
//! * **Panic isolation.** A panicking handler answers `500` for that
//!   request; the server (and the engine) keep running.
//! * **Deterministic degradation.** Every [`ParjError`] class maps to a
//!   fixed HTTP status ([`sparql::status_for`]): timeout → 504, budget
//!   → 413, parse → 400, corrupt store → 503, shed → 429.
//! * **Graceful shutdown.** [`ServerHandle::shutdown`] stops accepting,
//!   drains in-flight queries under a deadline, cancels stragglers, and
//!   reports what leaked.
//!
//! Observability rides on [`parj_obs::ServerMetrics`]: `/metrics`
//! serves the engine's families merged with `parj_server_*`,
//! `/healthz` answers liveness, `/readyz` answers readiness (finalized
//! store, not draining).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod http;
pub mod sparql;

use std::collections::HashMap;
use std::io;
use std::net::{IpAddr, Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

use parj_sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use parj_sync::thread::JoinHandle;
use parj_sync::{Arc, LockLevel, OrderedMutex};

use parj_core::{CancelToken, ParjError, SharedParj};
use parj_obs::{MetricsSnapshot, ServerMetrics};

use admission::{InflightGate, LatencyWindow, Quota, QuotaTable};
use http::{Limits, Method, Request, Response};

pub use admission::Permit;
pub use sparql::{status_for, Format};

/// Serving configuration. `Default` is suitable for tests and small
/// deployments: loopback, ephemeral port, 4 permits, quotas off.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:1234` (`:0` for ephemeral).
    pub addr: String,
    /// In-flight query permits (clamped to ≥ 1); past this, shed.
    pub permits: usize,
    /// Concurrent connection cap (clamped to ≥ permits + 1); past
    /// this, the acceptor sheds before spawning a handler thread.
    pub max_connections: usize,
    /// Optional per-client token-bucket quota, keyed by peer IP.
    pub quota: Option<Quota>,
    /// Time a client gets to deliver its complete request.
    pub read_timeout: Duration,
    /// Cap on request line + headers, bytes.
    pub max_header_bytes: usize,
    /// Cap on request bodies, bytes.
    pub max_body_bytes: usize,
    /// Deadline for draining in-flight queries at shutdown.
    pub drain_deadline: Duration,
    /// Deadline applied to queries that do not send their own
    /// `timeout` parameter (`None` = no default deadline).
    pub default_query_timeout: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            permits: 4,
            max_connections: 64,
            quota: None,
            read_timeout: Duration::from_secs(2),
            max_header_bytes: 16 * 1024,
            max_body_bytes: 1024 * 1024,
            drain_deadline: Duration::from_secs(5),
            default_query_timeout: None,
        }
    }
}

/// What the drain phase of a shutdown observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// Queries in flight when shutdown began.
    pub inflight_at_shutdown: u64,
    /// Queries still holding a permit after the drain deadline *and*
    /// the post-cancel grace period — zero on every healthy shutdown.
    pub leaked: u64,
}

impl std::fmt::Display for DrainReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shutdown: drained {} in-flight queries, leaked {} in-flight queries",
            self.inflight_at_shutdown, self.leaked
        )
    }
}

/// Shared state between the acceptor, connection handlers, and the
/// shutdown path.
struct ServerState {
    engine: Arc<SharedParj>,
    config: ServerConfig,
    metrics: Arc<ServerMetrics>,
    gate: Arc<InflightGate>,
    quotas: Option<QuotaTable>,
    latency: LatencyWindow,
    shutting_down: AtomicBool,
    /// Cancel tokens of admitted, still-running queries, keyed by a
    /// server-local request id; shutdown cancels whatever is left here
    /// after the drain deadline.
    live_tokens: OrderedMutex<HashMap<u64, CancelToken>>,
    next_request_id: AtomicU64,
    /// Connection-handler threads currently alive (drain waits on it).
    active_connections: AtomicUsize,
}

impl ServerState {
    fn shutting_down(&self) -> bool {
        // ordering: Relaxed — the flag is a hint consulted at request
        // boundaries; a request racing the flag is answered either way.
        self.shutting_down.load(Ordering::Relaxed)
    }

    fn retry_after(&self) -> u64 {
        self.latency.retry_after_secs()
    }
}

/// A running server: its bound address and the shutdown control.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    acceptor: Option<JoinHandle<()>>,
}

/// Entry point: bind, spawn the acceptor, serve until
/// [`ServerHandle::shutdown`].
pub struct ParjServer;

impl ParjServer {
    /// Binds `config.addr` and starts serving `engine`.
    pub fn spawn(engine: Arc<SharedParj>, config: ServerConfig) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(ServerState {
            metrics: Arc::new(ServerMetrics::new()),
            gate: Arc::new(InflightGate::new(config.permits)),
            quotas: config.quota.map(QuotaTable::new),
            latency: LatencyWindow::new(),
            shutting_down: AtomicBool::new(false),
            live_tokens: OrderedMutex::new(
                LockLevel::Server,
                "server.live_tokens",
                HashMap::new(),
            ),
            next_request_id: AtomicU64::new(0),
            active_connections: AtomicUsize::new(0),
            engine,
            config,
        });
        let acceptor_state = Arc::clone(&state);
        let acceptor = parj_sync::thread::Builder::new()
            .name("parj-acceptor".to_string())
            .spawn(move || accept_loop(listener, acceptor_state))?;
        Ok(ServerHandle {
            addr,
            state,
            acceptor: Some(acceptor),
        })
    }
}

impl ServerHandle {
    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's metric registry (shared with `/metrics`).
    pub fn metrics(&self) -> Arc<ServerMetrics> {
        Arc::clone(&self.state.metrics)
    }

    /// Queries currently holding a permit.
    pub fn inflight(&self) -> u64 {
        self.state.metrics.inflight()
    }

    /// Graceful shutdown: stop accepting, drain in-flight queries
    /// under the configured deadline, cancel stragglers, and report.
    ///
    /// Idempotent; the second call returns an already-drained report.
    pub fn shutdown(&mut self) -> DrainReport {
        // ordering: Relaxed — see ServerState::shutting_down.
        self.state.shutting_down.store(true, Ordering::Relaxed);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        let inflight_at_shutdown = self.state.metrics.inflight();
        let deadline = Instant::now() + self.state.config.drain_deadline;
        while self.connections_active() && Instant::now() < deadline {
            parj_sync::thread::sleep(Duration::from_millis(5));
        }
        if self.connections_active() {
            // Deadline passed: cancel whatever still runs and give the
            // cancellations a short grace period to unwind.
            let tokens: Vec<CancelToken> = {
                let map = self.state.live_tokens.lock();
                map.values().cloned().collect()
            };
            for t in &tokens {
                t.cancel();
            }
            let grace = Instant::now() + Duration::from_secs(2);
            while self.connections_active() && Instant::now() < grace {
                parj_sync::thread::sleep(Duration::from_millis(5));
            }
        }
        DrainReport {
            inflight_at_shutdown,
            leaked: self.state.metrics.inflight(),
        }
    }

    fn connections_active(&self) -> bool {
        // ordering: Relaxed — drain-loop observer; the handler's
        // decrement-on-drop makes 0 eventually visible.
        self.state.active_connections.load(Ordering::Relaxed) > 0
            || self.state.metrics.inflight() > 0
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.acceptor.is_some() {
            let _ = self.shutdown();
        }
    }
}

/// Accepts connections until shutdown; sheds (without spawning) past
/// the connection cap.
fn accept_loop(listener: TcpListener, state: Arc<ServerState>) {
    let conn_cap = state.config.max_connections.max(state.config.permits + 1);
    for stream in listener.incoming() {
        if state.shutting_down() {
            // The wake-up connection (and any racer) is dropped
            // unanswered; the acceptor exits.
            break;
        }
        let mut stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        state.metrics.record_connection();
        // ordering: Relaxed — connection count is a capacity hint and
        // drain signal, not a synchronization point.
        if state.active_connections.load(Ordering::Relaxed) >= conn_cap {
            state.metrics.record_shed();
            let resp = shed_response(&state);
            let _ = http::write_response(&mut stream, &resp, false);
            state.metrics.record_response(resp.status, 0);
            continue;
        }
        // ordering: Relaxed — see above.
        state.active_connections.fetch_add(1, Ordering::Relaxed);
        let conn_state = Arc::clone(&state);
        let spawned = parj_sync::thread::Builder::new()
            .name("parj-conn".to_string())
            .spawn(move || {
                // Balances the increment above on every exit, panics
                // included.
                struct ConnGuard<'a>(&'a AtomicUsize);
                impl Drop for ConnGuard<'_> {
                    fn drop(&mut self) {
                        // ordering: Relaxed — see accept_loop.
                        self.0.fetch_sub(1, Ordering::Relaxed);
                    }
                }
                let _guard = ConnGuard(&conn_state.active_connections);
                // A handler panic must never take the server down; the
                // 500 path inside already caught query panics, so this
                // outer net only catches handler bugs.
                let state = Arc::clone(&conn_state);
                let _ = catch_unwind(AssertUnwindSafe(move || {
                    handle_connection(&state, stream);
                }));
            });
        if spawned.is_err() {
            // Thread spawn failed (resource exhaustion): the guard
            // inside never ran, so rebalance here. The connection is
            // dropped; the OS sends RST.
            // ordering: Relaxed — see accept_loop.
            state.active_connections.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

/// The 429 shed/quota response with its `Retry-After` hint.
fn shed_response(state: &ServerState) -> Response {
    Response::text(429, "server at capacity, retry later")
        .with_header("Retry-After", state.retry_after().to_string())
}

/// The 503 draining response.
fn draining_response(state: &ServerState) -> Response {
    Response::text(503, "server shutting down")
        .with_header("Retry-After", state.retry_after().to_string())
}

/// Serves one request on `stream` and closes it.
fn handle_connection(state: &Arc<ServerState>, mut stream: TcpStream) {
    let peer_ip = stream.peer_addr().map(|a| a.ip()).ok();
    let limits = Limits {
        max_header_bytes: state.config.max_header_bytes,
        max_body_bytes: state.config.max_body_bytes,
        read_timeout: state.config.read_timeout,
    };
    let t0 = Instant::now();
    let req = match http::read_request(&mut stream, &limits) {
        Ok(req) => req,
        Err(e) => {
            if let Some(status) = e.status() {
                let resp = Response::text(status, e.message());
                let _ = http::write_response(&mut stream, &resp, false);
                state
                    .metrics
                    .record_response(status, t0.elapsed().as_micros() as u64);
            }
            return;
        }
    };
    let head_only = req.method == Method::Head;
    let resp = route(state, &req, peer_ip, &stream);
    let status = resp.status;
    let _ = http::write_response(&mut stream, &resp, head_only);
    state
        .metrics
        .record_response(status, t0.elapsed().as_micros() as u64);
}

/// Routes a parsed request to its endpoint.
fn route(
    state: &Arc<ServerState>,
    req: &Request,
    peer_ip: Option<IpAddr>,
    stream: &TcpStream,
) -> Response {
    match (req.path.as_str(), &req.method) {
        ("/healthz", Method::Get | Method::Head) => Response::text(200, "ok"),
        ("/readyz", Method::Get | Method::Head) => readyz(state),
        ("/metrics", Method::Get | Method::Head) => metrics_page(state),
        ("/sparql", _) => sparql_endpoint(state, req, peer_ip, stream),
        ("/healthz" | "/readyz" | "/metrics", _) => {
            Response::text(405, "method not allowed").with_header("Allow", "GET, HEAD".to_string())
        }
        (path, _) => Response::text(404, format!("no such endpoint: {path}")),
    }
}

/// Readiness: finalized store, not draining.
fn readyz(state: &Arc<ServerState>) -> Response {
    if state.shutting_down() {
        return Response::text(503, "draining");
    }
    match state.engine.try_num_triples() {
        Ok(n) => Response::text(200, format!("ready: {n} triples")),
        Err(ParjError::NotFinalized) => Response::text(503, "store not finalized"),
        Err(e) => Response::text(503, format!("not ready: {e}")),
    }
}

/// Engine + server metric families on one page.
fn metrics_page(state: &Arc<ServerState>) -> Response {
    let merged: MetricsSnapshot = state
        .engine
        .metrics_snapshot()
        .merge(state.metrics.snapshot());
    Response {
        status: 200,
        content_type: "text/plain; version=0.0.4; charset=utf-8",
        extra_headers: Vec::new(),
        body: merged.to_prometheus().into_bytes(),
    }
}

/// The admission-controlled query path.
fn sparql_endpoint(
    state: &Arc<ServerState>,
    req: &Request,
    peer_ip: Option<IpAddr>,
    stream: &TcpStream,
) -> Response {
    // Admission state machine, in order: drain check → protocol
    // validation (cheap, unmetered) → per-client quota → permit gate.
    if state.shutting_down() {
        return draining_response(state);
    }
    let parsed = match sparql::extract(req) {
        Ok(p) => p,
        Err(resp) => return resp,
    };
    if let (Some(quotas), Some(ip)) = (&state.quotas, peer_ip) {
        if !quotas.try_take(ip, Instant::now()) {
            state.metrics.record_quota_reject();
            return Response::text(429, "client over quota, retry later")
                .with_header("Retry-After", state.retry_after().to_string());
        }
    }
    let Some(permit) = state.gate.try_acquire(&state.metrics) else {
        state.metrics.record_shed();
        return shed_response(state);
    };
    run_admitted(state, &parsed, stream, permit)
}

/// Runs an admitted query: cancel-on-disconnect watcher, panic
/// isolation, latency recording. The permit is held (and the in-flight
/// gauge raised) for exactly the scope of this function.
fn run_admitted(
    state: &Arc<ServerState>,
    parsed: &sparql::SparqlRequest,
    stream: &TcpStream,
    permit: Permit,
) -> Response {
    // ordering: Relaxed — the id only needs uniqueness, not ordering.
    let request_id = state.next_request_id.fetch_add(1, Ordering::Relaxed);
    let token = CancelToken::new();
    state.live_tokens.lock().insert(request_id, token.clone());
    // Unregisters the token and releases the permit on every exit.
    struct AdmissionGuard<'a> {
        state: &'a ServerState,
        request_id: u64,
        _permit: Permit,
    }
    impl Drop for AdmissionGuard<'_> {
        fn drop(&mut self) {
            self.state.live_tokens.lock().remove(&self.request_id);
        }
    }
    let _guard = AdmissionGuard {
        state,
        request_id,
        _permit: permit,
    };
    let watcher = DisconnectWatcher::spawn(stream, token.clone());

    let t0 = Instant::now();
    let engine = Arc::clone(&state.engine);
    let timeout = parsed.timeout.or(state.config.default_query_timeout);
    let query = parsed.query.clone();
    let max_rows = parsed.max_rows;
    let no_cache = parsed.no_cache;
    let run_token = token.clone();
    // Panic isolation: a panicking query (or serializer) answers 500
    // for this request only. The engine holds no state across requests
    // that a panic could corrupt (worker panics are already contained
    // engine-side; this net is for everything else).
    let result = catch_unwind(AssertUnwindSafe(move || {
        let mut builder = engine.request(&query).cancel(run_token);
        if let Some(t) = timeout {
            builder = builder.timeout(t);
        }
        if let Some(n) = max_rows {
            builder = builder.max_rows(n);
        }
        if no_cache {
            builder = builder.bypass_cache();
        }
        builder.run()
    }));
    drop(watcher); // stop polling the socket before writing the response
    let elapsed = t0.elapsed().as_micros() as u64;
    match result {
        Ok(Ok(outcome)) => {
            state.latency.record(elapsed);
            sparql::serialize(&outcome, parsed.format)
        }
        Ok(Err(err)) => {
            // Completed runs (even failed ones) inform the latency
            // window; shed decisions should reflect real service time.
            state.latency.record(elapsed);
            sparql::error_response(&err)
        }
        Err(panic) => {
            state.metrics.record_panic();
            let msg = panic_message(&panic);
            Response::text(500, format!("internal error: request handler panicked: {msg}"))
        }
    }
}

/// Best-effort panic payload extraction.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string payload>".to_string()
    }
}

/// Ties a socket's liveness to a query's [`CancelToken`]: a thread
/// polls the connection with short reads; EOF or a hard error cancels
/// the token, freeing the query's workers. Dropping the watcher stops
/// the polling and joins the thread.
struct DisconnectWatcher {
    done: Arc<AtomicBool>,
    /// A second handle to the watched socket, used by `Drop` to shut
    /// down its read half — waking the poll read immediately instead
    /// of letting the join wait out a full poll interval.
    stream: Option<TcpStream>,
    thread: Option<JoinHandle<()>>,
}

impl DisconnectWatcher {
    /// Poll interval; also the worst-case extra latency before a
    /// disconnect is noticed.
    const POLL: Duration = Duration::from_millis(50);

    fn spawn(stream: &TcpStream, token: CancelToken) -> DisconnectWatcher {
        let done = Arc::new(AtomicBool::new(false));
        let waker = stream.try_clone().ok();
        let thread = stream.try_clone().ok().and_then(|watch_stream| {
            let done = Arc::clone(&done);
            parj_sync::thread::Builder::new()
                .name("parj-disconnect-watch".to_string())
                .spawn(move || watch(watch_stream, token, done))
                .ok()
        });
        // If cloning or spawning failed the query simply runs without
        // disconnect detection — its own guards still bound it.
        DisconnectWatcher {
            done,
            stream: waker,
            thread,
        }
    }
}

fn watch(stream: TcpStream, token: CancelToken, done: Arc<AtomicBool>) {
    use std::io::Read;
    let mut stream = stream;
    let mut byte = [0u8; 16];
    if stream.set_read_timeout(Some(DisconnectWatcher::POLL)).is_err() {
        return;
    }
    loop {
        // ordering: Relaxed — the done flag is a stop hint; one extra
        // 50ms poll after the response is written is harmless.
        if done.load(Ordering::Relaxed) {
            return;
        }
        match stream.read(&mut byte) {
            // EOF: the peer closed its write side or the connection —
            // unless `Drop` just shut our read half down to wake us,
            // in which case the query already finished.
            Ok(0) => {
                // ordering: Relaxed — done is set before the shutdown
                // that produces this EOF; a stale read only risks a
                // harmless cancel of an already-finished request.
                if !done.load(Ordering::Relaxed) {
                    token.cancel();
                }
                return;
            }
            // Stray pipelined bytes: ignore (one request per
            // connection; the response will say Connection: close).
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) => {}
            // Reset / broken pipe: the peer is gone.
            Err(_) => {
                token.cancel();
                return;
            }
        }
    }
}

impl Drop for DisconnectWatcher {
    fn drop(&mut self) {
        // ordering: Relaxed — see `watch`.
        self.done.store(true, Ordering::Relaxed);
        // Wake the poll read right away: shutting down the read half
        // makes the blocked read return EOF without impairing the
        // response write that follows on the same socket.
        if let Some(s) = &self.stream {
            let _ = s.shutdown(Shutdown::Read);
        }
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}
