//! SPARQL Protocol mapping: request extraction, result serialization,
//! and the deterministic `ParjError` → HTTP status table.
//!
//! Both serializers render from the engine's materialized
//! [`QueryOutcome`] rows — the same `RowBatch`-decoded terms every
//! embedded caller sees — so a served body is byte-derivable from a
//! direct `engine.request(..).run()` answer (the overload suite
//! asserts exactly that).

use std::time::Duration;

use parj_core::{ParjError, QueryOutcome, Term};

use crate::http::{HttpError, Method, Request, Response};

/// Result serialization formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// SPARQL 1.1 Query Results JSON (`application/sparql-results+json`).
    Json,
    /// Tab-separated values with N-Triples-encoded terms
    /// (`text/tab-separated-values`).
    Tsv,
}

impl Format {
    /// The response `Content-Type`.
    pub fn content_type(self) -> &'static str {
        match self {
            Format::Json => "application/sparql-results+json",
            Format::Tsv => "text/tab-separated-values; charset=utf-8",
        }
    }
}

/// A fully-extracted protocol request, ready to run.
#[derive(Debug)]
pub struct SparqlRequest {
    /// The SPARQL query text.
    pub query: String,
    /// Requested serialization.
    pub format: Format,
    /// Per-request deadline override, from the `timeout` parameter
    /// (seconds, possibly fractional).
    pub timeout: Option<Duration>,
    /// Per-request result-row budget, from the `max-rows` parameter.
    pub max_rows: Option<u64>,
    /// `no-cache=1`: bypass the query cache for this run.
    pub no_cache: bool,
}

/// Extracts the protocol request from a parsed HTTP request, per the
/// SPARQL 1.1 Protocol: `GET` with a `query` parameter, `POST` with
/// `application/x-www-form-urlencoded`, or `POST` with a raw
/// `application/sparql-query` body.
pub fn extract(req: &Request) -> Result<SparqlRequest, Response> {
    let bad = |msg: String| Response::text(400, msg);
    let mut params: Vec<(String, String)> = req.params.clone();
    match req.method {
        Method::Get | Method::Head => {}
        Method::Post => {
            let content_type = req
                .header("content-type")
                .map(|v| v.split(';').next().unwrap_or("").trim().to_ascii_lowercase())
                .unwrap_or_default();
            match content_type.as_str() {
                "application/x-www-form-urlencoded" | "" => {
                    let body_params = crate::http::parse_urlencoded(&req.body).map_err(|e| {
                        match e {
                            HttpError::BadRequest(m) => bad(format!("bad request: {m}")),
                            other => bad(format!("bad request: {}", other.message())),
                        }
                    })?;
                    params.extend(body_params);
                }
                "application/sparql-query" => {
                    let text = String::from_utf8(req.body.clone())
                        .map_err(|_| bad("bad request: non-UTF-8 query body".into()))?;
                    params.push(("query".to_string(), text));
                }
                other => {
                    return Err(bad(format!("bad request: unsupported content type {other:?}")))
                }
            }
        }
        Method::Other(ref m) => {
            return Err(Response::text(405, format!("method {m} not allowed"))
                .with_header("Allow", "GET, POST, HEAD".to_string()))
        }
    }
    let find = |name: &str| {
        params
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    };
    let query = find("query")
        .ok_or_else(|| bad("bad request: missing required parameter \"query\"".into()))?
        .to_string();
    if query.trim().is_empty() {
        return Err(bad("bad request: empty query".into()));
    }
    let timeout = match find("timeout") {
        Some(v) => Some(
            v.parse::<f64>()
                .ok()
                .filter(|s| s.is_finite() && *s > 0.0 && *s <= 3600.0)
                .map(Duration::from_secs_f64)
                .ok_or_else(|| bad(format!("bad request: invalid timeout {v:?}")))?,
        ),
        None => None,
    };
    let max_rows = match find("max-rows") {
        Some(v) => Some(
            v.parse::<u64>()
                .ok()
                .filter(|n| *n > 0)
                .ok_or_else(|| bad(format!("bad request: invalid max-rows {v:?}")))?,
        ),
        None => None,
    };
    let no_cache = matches!(find("no-cache"), Some("1") | Some("true"));
    let format = negotiate_format(find("format"), req.header("accept"))
        .map_err(|m| bad(format!("bad request: {m}")))?;
    Ok(SparqlRequest {
        query,
        format,
        timeout,
        max_rows,
        no_cache,
    })
}

/// Picks the serialization: an explicit `format` parameter wins, then
/// the `Accept` header; JSON is the default.
fn negotiate_format(
    param: Option<&str>,
    accept: Option<&str>,
) -> Result<Format, String> {
    if let Some(p) = param {
        return match p {
            "json" => Ok(Format::Json),
            "tsv" => Ok(Format::Tsv),
            other => Err(format!("unknown format {other:?} (expected json or tsv)")),
        };
    }
    if let Some(a) = accept {
        for item in a.split(',') {
            let media = item.split(';').next().unwrap_or("").trim();
            match media {
                "application/sparql-results+json" | "application/json" | "*/*" => {
                    return Ok(Format::Json)
                }
                "text/tab-separated-values" => return Ok(Format::Tsv),
                _ => {}
            }
        }
    }
    Ok(Format::Json)
}

/// Deterministic `ParjError` → HTTP status mapping (the table in
/// DESIGN.md §14). Client faults are 4xx, engine/state faults are 5xx,
/// interrupted runs get the most specific code available.
pub fn status_for(err: &ParjError) -> u16 {
    match err {
        // The request itself is at fault.
        ParjError::Sparql(_)
        | ParjError::Rio(_)
        | ParjError::Optimize(_)
        | ParjError::Unsupported(_)
        | ParjError::InvalidOptions(_) => 400,
        // The run exceeded its row budget: the answer is "too large".
        ParjError::BudgetExceeded { .. } => 413,
        // The run exceeded its deadline.
        ParjError::DeadlineExceeded { .. } => 504,
        // The store cannot serve correct answers right now.
        ParjError::NotFinalized | ParjError::CorruptStore { .. } => 503,
        // Cancelled server-side (disconnect or drain); the client has
        // usually gone, but a drain-cancelled client sees 503.
        ParjError::Cancelled { .. } => 503,
        // Engine faults: contained panics and broken invariants.
        ParjError::Plan(_)
        | ParjError::Snapshot(_)
        | ParjError::Io(_)
        | ParjError::WorkerPanicked { .. }
        | ParjError::Internal(_) => 500,
    }
}

/// Builds the error response for a failed run.
pub fn error_response(err: &ParjError) -> Response {
    Response::text(status_for(err), format!("query failed: {err}"))
}

/// Serializes a successful outcome in the requested format.
pub fn serialize(outcome: &QueryOutcome, format: Format) -> Response {
    let body = match format {
        Format::Json => to_sparql_json(outcome),
        Format::Tsv => to_tsv(outcome),
    };
    Response {
        status: 200,
        content_type: format.content_type(),
        extra_headers: Vec::new(),
        body: body.into_bytes(),
    }
}

/// SPARQL 1.1 Query Results JSON. Hand-rolled (the workspace is
/// dependency-free); `escape_json` covers the full control range.
pub fn to_sparql_json(outcome: &QueryOutcome) -> String {
    let mut out = String::with_capacity(256);
    out.push_str("{\"head\":{\"vars\":[");
    for (i, v) in outcome.vars.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(&escape_json(v));
        out.push('"');
    }
    out.push_str("]},\"results\":{\"bindings\":[");
    if let Some(rows) = &outcome.rows {
        for (ri, row) in rows.iter().enumerate() {
            if ri > 0 {
                out.push(',');
            }
            out.push('{');
            let mut first = true;
            for (var, term) in outcome.vars.iter().zip(row) {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push('"');
                out.push_str(&escape_json(var));
                out.push_str("\":");
                push_json_term(&mut out, term);
            }
            out.push('}');
        }
    }
    out.push_str("]}}");
    out
}

fn push_json_term(out: &mut String, term: &Term) {
    match term {
        Term::Iri(iri) => {
            out.push_str("{\"type\":\"uri\",\"value\":\"");
            out.push_str(&escape_json(iri));
            out.push_str("\"}");
        }
        Term::BlankNode(label) => {
            out.push_str("{\"type\":\"bnode\",\"value\":\"");
            out.push_str(&escape_json(label));
            out.push_str("\"}");
        }
        Term::Literal {
            lexical,
            lang,
            datatype,
        } => {
            out.push_str("{\"type\":\"literal\",\"value\":\"");
            out.push_str(&escape_json(lexical));
            out.push('"');
            if let Some(lang) = lang {
                out.push_str(",\"xml:lang\":\"");
                out.push_str(&escape_json(lang));
                out.push('"');
            } else if let Some(dt) = datatype {
                out.push_str(",\"datatype\":\"");
                out.push_str(&escape_json(dt));
                out.push('"');
            }
            out.push('}');
        }
    }
}

/// SPARQL 1.1 TSV: a `?var`-prefixed header row, then one N-Triples
/// term per cell ([`Term`]'s `Display` already escapes tabs and
/// newlines inside literals).
pub fn to_tsv(outcome: &QueryOutcome) -> String {
    let mut out = String::with_capacity(128);
    for (i, v) in outcome.vars.iter().enumerate() {
        if i > 0 {
            out.push('\t');
        }
        out.push('?');
        out.push_str(v);
    }
    out.push('\n');
    if let Some(rows) = &outcome.rows {
        for row in rows {
            for (i, term) in row.iter().enumerate() {
                if i > 0 {
                    out.push('\t');
                }
                out.push_str(&term.to_string());
            }
            out.push('\n');
        }
    }
    out
}

/// JSON string escaping (quotes, backslash, and the control range).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use parj_core::QueryRunStats;

    fn outcome(vars: &[&str], rows: Vec<Vec<Term>>) -> QueryOutcome {
        QueryOutcome {
            vars: vars.iter().map(ToString::to_string).collect(),
            count: rows.len() as u64,
            rows: Some(rows),
            ids: None,
            stats: QueryRunStats::default(),
            profile: None,
        }
    }

    #[test]
    fn json_renders_every_term_shape() {
        let out = outcome(
            &["s", "o"],
            vec![vec![
                Term::iri("http://e/a"),
                Term::lang_literal("hi \"there\"", "en"),
            ]],
        );
        let json = to_sparql_json(&out);
        assert!(json.contains("\"vars\":[\"s\",\"o\"]"));
        assert!(json.contains("{\"type\":\"uri\",\"value\":\"http://e/a\"}"));
        assert!(json.contains("\"xml:lang\":\"en\""));
        assert!(json.contains("hi \\\"there\\\""));
        let typed = outcome(
            &["x"],
            vec![
                vec![Term::typed_literal("5", "http://www.w3.org/2001/XMLSchema#integer")],
                vec![Term::blank("b0")],
            ],
        );
        let json = to_sparql_json(&typed);
        assert!(json.contains("\"datatype\":\"http://www.w3.org/2001/XMLSchema#integer\""));
        assert!(json.contains("{\"type\":\"bnode\",\"value\":\"b0\"}"));
    }

    #[test]
    fn tsv_headers_and_terms() {
        let out = outcome(
            &["s", "o"],
            vec![vec![Term::iri("http://e/a"), Term::literal("line\nbreak")]],
        );
        let tsv = to_tsv(&out);
        let mut lines = tsv.lines();
        assert_eq!(lines.next(), Some("?s\t?o"));
        // The literal's newline is N-Triples-escaped, so the row stays
        // on one line.
        assert_eq!(lines.next(), Some("<http://e/a>\t\"line\\nbreak\""));
        assert_eq!(lines.next(), None);
    }

    #[test]
    fn status_table_is_deterministic() {
        assert_eq!(status_for(&ParjError::Unsupported("x".into())), 400);
        assert_eq!(status_for(&ParjError::InvalidOptions("x".into())), 400);
        assert_eq!(status_for(&ParjError::NotFinalized), 503);
        assert_eq!(status_for(&ParjError::Internal("x".into())), 500);
        assert_eq!(
            status_for(&ParjError::BudgetExceeded {
                rows: 10,
                partial: Box::default()
            }),
            413
        );
        assert_eq!(
            status_for(&ParjError::DeadlineExceeded {
                elapsed: Duration::from_secs(1),
                partial: Box::default()
            }),
            504
        );
        assert_eq!(
            status_for(&ParjError::Cancelled {
                partial: Box::default()
            }),
            503
        );
        assert_eq!(
            status_for(&ParjError::WorkerPanicked {
                message: "x".into(),
                partial: Box::default()
            }),
            500
        );
    }
}
