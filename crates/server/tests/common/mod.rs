//! Shared fixtures for the server integration suites: a tiny in-process
//! engine, a spawned server on an ephemeral port, and a raw-socket HTTP
//! client (deliberately hand-rolled so hostile bytes can go on the wire
//! verbatim).

// Shared across three test targets; each uses a different subset.
#![allow(dead_code)]

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use parj_core::{Parj, SharedParj, Term};
use parj_server::{ParjServer, ServerConfig, ServerHandle};

/// Builds a small engine: a `teaches` star plus a two-hop chain.
pub fn small_engine() -> Arc<SharedParj> {
    let mut e = Parj::builder().threads(1).cache(true).build();
    let triples = (0..8u32).flat_map(|i| {
        [
            (
                Term::iri(format!("http://e/prof{i}")),
                Term::iri("http://e/teaches"),
                Term::iri(format!("http://e/course{i}")),
            ),
            (
                Term::iri(format!("http://e/course{i}")),
                Term::iri("http://e/next"),
                Term::iri(format!("http://e/course{}", (i + 1) % 8)),
            ),
        ]
    });
    e.mutate().insert_all(triples).run().expect("seed engine");
    Arc::new(SharedParj::new(e))
}

/// An engine whose star query (`?x p ?y . ?x p ?z`) produces `n²` rows
/// — slow enough for overload and disconnect tests to overlap requests.
pub fn fanout_engine(n: u32) -> Arc<SharedParj> {
    let mut e = Parj::builder().threads(1).cache(false).build();
    let triples = (0..n).map(|i| {
        (
            Term::iri("http://e/hub"),
            Term::iri("http://e/p"),
            Term::iri(format!("http://e/leaf{i}")),
        )
    });
    e.mutate().insert_all(triples).run().expect("seed engine");
    Arc::new(SharedParj::new(e))
}

/// The `n²`-row query for [`fanout_engine`].
pub const FANOUT_QUERY: &str =
    "SELECT ?y ?z WHERE { <http://e/hub> <http://e/p> ?y . <http://e/hub> <http://e/p> ?z }";

/// Spawns a server over `engine` with `config` (addr forced to an
/// ephemeral loopback port).
pub fn spawn(engine: Arc<SharedParj>, mut config: ServerConfig) -> ServerHandle {
    config.addr = "127.0.0.1:0".to_string();
    ParjServer::spawn(engine, config).expect("bind ephemeral port")
}

/// A parsed response.
#[derive(Debug)]
pub struct ClientResponse {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl ClientResponse {
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    pub fn body_str(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Sends raw bytes and reads the connection to EOF; `None` when the
/// server closed without writing a response.
pub fn send_raw(addr: SocketAddr, bytes: &[u8]) -> Option<ClientResponse> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(bytes).expect("write request");
    read_response(&mut stream)
}

/// Reads a full `Connection: close` response from `stream`.
pub fn read_response(stream: &mut TcpStream) -> Option<ClientResponse> {
    let mut raw = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => raw.extend_from_slice(&chunk[..n]),
            Err(_) => break,
        }
    }
    parse_response(&raw)
}

fn parse_response(raw: &[u8]) -> Option<ClientResponse> {
    let head_end = raw.windows(4).position(|w| w == b"\r\n\r\n")?;
    let head = std::str::from_utf8(&raw[..head_end]).ok()?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next()?;
    let status: u16 = status_line.split(' ').nth(1)?.parse().ok()?;
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
        .collect();
    Some(ClientResponse {
        status,
        headers,
        body: raw[head_end + 4..].to_vec(),
    })
}

/// A well-formed `GET` for `path` (which may carry a query string).
pub fn get(addr: SocketAddr, path: &str) -> ClientResponse {
    send_raw(
        addr,
        format!("GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").as_bytes(),
    )
    .expect("server answered")
}

/// A `GET /sparql` for a query, extra params appended verbatim.
pub fn sparql_get(addr: SocketAddr, query: &str, extra: &str) -> ClientResponse {
    get(addr, &format!("/sparql?query={}{extra}", urlencode(query)))
}

/// Minimal percent-encoder for query text.
pub fn urlencode(s: &str) -> String {
    let mut out = String::with_capacity(s.len() * 3);
    for b in s.bytes() {
        match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            b' ' => out.push('+'),
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// Scrapes `/metrics` and returns the value of `family` with the given
/// rendered label block (e.g. `parj_server_inflight` + `""`, or
/// `parj_server_responses_total` + `{status="200"}`).
pub fn metric_value(addr: SocketAddr, family: &str, labels: &str) -> Option<u64> {
    let resp = get(addr, "/metrics");
    assert_eq!(resp.status, 200, "metrics endpoint must answer");
    let needle = format!("{family}{labels} ");
    resp.body_str()
        .lines()
        .find(|l| l.starts_with(&needle))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
}
