//! Hostile-input suite: the HTTP front door must answer malformed,
//! oversized, truncated, and mis-encoded requests with the right 4xx
//! status — and must never panic, hang, or stop serving afterwards.

mod common;

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use common::*;
use parj_server::ServerConfig;

const TEACHES: &str = "SELECT ?x ?z WHERE { ?x <http://e/teaches> ?z }";

fn hostile_config() -> ServerConfig {
    ServerConfig {
        // Short read timeout so the slow-client test completes quickly.
        read_timeout: Duration::from_millis(300),
        max_header_bytes: 2048,
        max_body_bytes: 4096,
        ..ServerConfig::default()
    }
}

#[test]
fn malformed_request_lines_answer_400() {
    let mut server = spawn(small_engine(), hostile_config());
    let addr = server.addr();
    for bad in [
        "GARBAGE\r\n\r\n",
        "GET\r\n\r\n",
        "GET /sparql\r\n\r\n",
        "GET /sparql HTTP/2.0\r\n\r\n",
        "GET /sparql HTTP/1.1 extra\r\n\r\n",
        "G3T /sparql HTTP/1.1\r\n\r\n",
        "GET /sparql HTTP/1.1\r\nbad header line\r\n\r\n",
        "GET /sparql HTTP/1.1\r\nX Y: z\r\n\r\n",
    ] {
        let resp = send_raw(addr, bad.as_bytes()).expect("a response, not a hang");
        assert_eq!(resp.status, 400, "for request {bad:?}");
    }
    // Binary junk that is not UTF-8 at all.
    let resp = send_raw(addr, &[0xff, 0xfe, 0x00, 0x01, b'\r', b'\n', b'\r', b'\n']);
    assert_eq!(resp.expect("answered").status, 400);
    assert_server_alive(&server);
    assert_eq!(server.shutdown().leaked, 0);
}

#[test]
fn oversized_headers_answer_431() {
    let mut server = spawn(small_engine(), hostile_config());
    let huge = format!(
        "GET /sparql HTTP/1.1\r\nX-Padding: {}\r\n\r\n",
        "a".repeat(8 * 1024)
    );
    let resp = send_raw(server.addr(), huge.as_bytes()).unwrap();
    assert_eq!(resp.status, 431);
    assert_server_alive(&server);
    assert_eq!(server.shutdown().leaked, 0);
}

#[test]
fn oversized_and_truncated_bodies() {
    let mut server = spawn(small_engine(), hostile_config());
    let addr = server.addr();

    // Declared body over the cap → 413 before reading it.
    let resp = send_raw(
        addr,
        b"POST /sparql HTTP/1.1\r\nHost: t\r\nContent-Type: application/x-www-form-urlencoded\r\nContent-Length: 1000000\r\n\r\n",
    )
    .unwrap();
    assert_eq!(resp.status, 413);

    // POST without Content-Length → 411.
    let resp = send_raw(
        addr,
        b"POST /sparql HTTP/1.1\r\nHost: t\r\nContent-Type: application/x-www-form-urlencoded\r\n\r\n",
    )
    .unwrap();
    assert_eq!(resp.status, 411);

    // Truncated body: declares 100 bytes, sends 5, half-closes → 400.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(b"POST /sparql HTTP/1.1\r\nHost: t\r\nContent-Length: 100\r\n\r\nquery")
        .unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let resp = read_response(&mut stream).expect("answered");
    assert_eq!(resp.status, 400);

    // Unparsable Content-Length → 400.
    let resp = send_raw(
        addr,
        b"POST /sparql HTTP/1.1\r\nHost: t\r\nContent-Length: banana\r\n\r\n",
    )
    .unwrap();
    assert_eq!(resp.status, 400);
    assert_server_alive(&server);
    assert_eq!(server.shutdown().leaked, 0);
}

#[test]
fn bad_percent_encoding_and_non_utf8_params_answer_400() {
    let mut server = spawn(small_engine(), hostile_config());
    let addr = server.addr();
    // Truncated and non-hex escapes.
    for target in ["/sparql?query=%2", "/sparql?query=%zz", "/spar%2ql?x=1"] {
        let resp = send_raw(
            addr,
            format!("GET {target} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes(),
        )
        .unwrap();
        assert_eq!(resp.status, 400, "for target {target:?}");
    }
    // Valid escapes decoding to invalid UTF-8.
    let resp = send_raw(addr, b"GET /sparql?query=%FF%FE HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
    assert_eq!(resp.status, 400);
    // Same smuggled through a POST form body.
    let body = b"query=%FF%FE";
    let resp = send_raw(
        addr,
        format!(
            "POST /sparql HTTP/1.1\r\nHost: t\r\nContent-Type: application/x-www-form-urlencoded\r\nContent-Length: {}\r\n\r\nquery=%FF%FE",
            body.len()
        )
        .as_bytes(),
    )
    .unwrap();
    assert_eq!(resp.status, 400);
    assert_server_alive(&server);
    assert_eq!(server.shutdown().leaked, 0);
}

#[test]
fn slow_clients_time_out_with_408() {
    let mut server = spawn(small_engine(), hostile_config());
    // Connect and send an incomplete request head, then stall.
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(b"GET /sparql HTT").unwrap();
    let resp = read_response(&mut stream).expect("server must not hang on a stalled client");
    assert_eq!(resp.status, 408);
    assert_server_alive(&server);
    assert_eq!(server.shutdown().leaked, 0);
}

#[test]
fn unexpected_bodies_and_content_types_are_rejected() {
    let mut server = spawn(small_engine(), hostile_config());
    let addr = server.addr();
    // GET with a body.
    let resp = send_raw(
        addr,
        b"GET /sparql?query=x HTTP/1.1\r\nHost: t\r\nContent-Length: 4\r\n\r\njunk",
    )
    .unwrap();
    assert_eq!(resp.status, 400);
    // POST with an unsupported content type.
    let resp = send_raw(
        addr,
        b"POST /sparql HTTP/1.1\r\nHost: t\r\nContent-Type: application/xml\r\nContent-Length: 3\r\n\r\nabc",
    )
    .unwrap();
    assert_eq!(resp.status, 400);
    assert_server_alive(&server);
    assert_eq!(server.shutdown().leaked, 0);
}

/// After hostile traffic the server must still answer real queries,
/// with zero contained panics recorded.
fn assert_server_alive(server: &parj_server::ServerHandle) {
    let resp = sparql_get(server.addr(), TEACHES, "");
    assert_eq!(resp.status, 200, "server must keep serving after hostile input");
    assert_eq!(
        metric_value(server.addr(), "parj_server_panics_total", ""),
        Some(0),
        "hostile input must never reach a panic"
    );
    assert_eq!(
        metric_value(server.addr(), "parj_server_inflight", ""),
        Some(0)
    );
}
