//! Loom model of the admission permit gate.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"`. The gate is the
//! server's overload valve: a lost permit leaks a slot forever (the
//! server slowly chokes to zero capacity), a double release mints
//! capacity the engine cannot back. The models pin the RAII protocol
//! under adversarial schedules:
//!
//! * permit exactness — concurrent `try_acquire`/drop never push
//!   `active` above `permits`, and every schedule drains back to zero;
//! * shed accounting — every attempt either gets a permit or is shed,
//!   never both, never neither;
//! * release-on-panic — a holder that panics still frees its slot via
//!   `Drop`, so a full gate always recovers.
#![cfg(loom)]

use parj_obs::ServerMetrics;
use parj_server::admission::InflightGate;
use parj_sync::thread;
use parj_sync::Arc;

#[test]
fn loom_permits_stay_exact_under_concurrent_acquire_and_drop() {
    loom::model(|| {
        let gate = Arc::new(InflightGate::new(1));
        let metrics = Arc::new(ServerMetrics::new());
        thread::scope(|s| {
            for _ in 0..2 {
                let gate = Arc::clone(&gate);
                let metrics = Arc::clone(&metrics);
                s.spawn(move || {
                    for _ in 0..2 {
                        let permit = gate.try_acquire(&metrics);
                        // While held, occupancy never exceeds capacity.
                        assert!(gate.active() <= gate.permits());
                        drop(permit);
                    }
                });
            }
        });
        // Every schedule drains the gate completely.
        assert_eq!(gate.active(), 0);
        assert_eq!(metrics.inflight(), 0);
    });
}

#[test]
fn loom_shed_and_acquire_accounting_is_total() {
    loom::model(|| {
        let gate = Arc::new(InflightGate::new(1));
        let metrics = Arc::new(ServerMetrics::new());
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let gate = Arc::clone(&gate);
                let metrics = Arc::clone(&metrics);
                thread::spawn(move || {
                    // Hold the permit across the whole closure so the
                    // two threads genuinely contend for the one slot.
                    match gate.try_acquire(&metrics) {
                        Some(_permit) => (1u32, 0u32),
                        None => (0, 1),
                    }
                })
            })
            .collect();
        let (mut acquired, mut shed) = (0, 0);
        for h in handles {
            let (a, s) = h.join().unwrap();
            acquired += a;
            shed += s;
        }
        // Each attempt resolved exactly one way.
        assert_eq!(acquired + shed, 2);
        // At least one attempt must have won the free slot.
        assert!(acquired >= 1, "a free slot was refused on every schedule");
        // After all holders dropped, the gate is reusable.
        assert_eq!(gate.active(), 0);
        assert!(gate.try_acquire(&metrics).is_some());
    });
}

#[test]
fn loom_panicking_holder_releases_its_permit() {
    loom::model(|| {
        let gate = Arc::new(InflightGate::new(1));
        let metrics = Arc::new(ServerMetrics::new());
        let g = Arc::clone(&gate);
        let m = Arc::clone(&metrics);
        let handle = thread::spawn(move || {
            let _permit = g.try_acquire(&m).expect("slot free at start");
            panic!("query worker died mid-flight");
        });
        // Concurrently poke the gate; whatever interleaving happens,
        // nothing may exceed capacity.
        let observed = gate.try_acquire(&metrics);
        assert!(gate.active() <= gate.permits());
        drop(observed);
        assert!(handle.join().is_err(), "holder must have panicked");
        // Unwinding dropped the permit: the slot is free again.
        assert_eq!(gate.active(), 0);
        assert_eq!(metrics.inflight(), 0);
        assert!(gate.try_acquire(&metrics).is_some());
    });
}
