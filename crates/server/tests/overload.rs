//! Overload and degradation suite: saturation with more clients than
//! permits, per-client quotas, and cancel-on-disconnect.

mod common;

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use common::*;
use parj_server::{admission::Quota, sparql, ServerConfig};

/// The tentpole acceptance test: 4× more concurrent clients than
/// permits. Every request receives exactly one response, every
/// response is 200 or 429, accepted bodies are byte-identical to a
/// direct engine run, sheds carry `Retry-After`, nothing panics, and
/// the in-flight gauge drains to zero.
#[test]
fn saturation_sheds_cleanly_and_drains_to_zero() {
    const PERMITS: usize = 2;
    const CLIENTS: usize = 4 * PERMITS;
    const REQUESTS_PER_CLIENT: usize = 6;

    // ~22k result rows per query: enough decode + serialization work
    // that eight back-to-back clients genuinely overlap on two permits.
    let engine = fanout_engine(150);
    let mut server = spawn(
        Arc::clone(&engine),
        ServerConfig {
            permits: PERMITS,
            ..ServerConfig::default()
        },
    );
    let addr = server.addr();

    let expected = sparql::to_sparql_json(&engine.request(FANOUT_QUERY).run().unwrap());

    // Per request: (status, body byte-identical to the direct run,
    // parsed Retry-After). Bodies are compared in the client thread so
    // the test does not hold CLIENTS × multi-MB responses at once.
    let outcomes: Vec<(u16, bool, Option<u64>)> = std::thread::scope(|s| {
        let expected = &expected;
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                s.spawn(move || {
                    let mut out = Vec::with_capacity(REQUESTS_PER_CLIENT);
                    for _ in 0..REQUESTS_PER_CLIENT {
                        let resp = sparql_get(addr, FANOUT_QUERY, "");
                        out.push((
                            resp.status,
                            resp.body == expected.as_bytes(),
                            resp.header("retry-after").and_then(|v| v.parse().ok()),
                        ));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread must not panic"))
            .collect()
    });

    // Exactly one response per request.
    assert_eq!(outcomes.len(), CLIENTS * REQUESTS_PER_CLIENT);
    let mut oks = 0u64;
    let mut sheds = 0u64;
    for (status, body_matches, retry_after) in &outcomes {
        match status {
            200 => {
                oks += 1;
                assert!(
                    body_matches,
                    "accepted responses must be byte-identical to the direct run"
                );
            }
            429 => {
                sheds += 1;
                let ra = retry_after.expect("shed responses carry a whole-second Retry-After");
                assert!((1..=30).contains(&ra), "Retry-After {ra} outside clamp");
            }
            other => panic!("unexpected status {other} under saturation"),
        }
    }
    assert!(oks > 0, "some requests must be served");
    assert!(
        sheds > 0,
        "4x clients over {PERMITS} permits must shed at least once"
    );

    // The gauge drains to zero and the counters add up.
    assert_eq!(metric_value(addr, "parj_server_inflight", ""), Some(0));
    assert_eq!(server.inflight(), 0);
    assert_eq!(metric_value(addr, "parj_server_panics_total", ""), Some(0));
    let shed_metric = metric_value(addr, "parj_server_shed_total", "").unwrap();
    assert!(shed_metric >= sheds, "every client-visible shed is counted");
    // `>=` because every /metrics scrape above also records a 200.
    let ok_metric =
        metric_value(addr, "parj_server_responses_total", "{status=\"200\"}").unwrap();
    assert!(ok_metric >= oks, "ok responses counted: {ok_metric} < {oks}");

    let report = server.shutdown();
    assert_eq!(report.leaked, 0, "drain must leak nothing: {report}");
}

#[test]
fn per_client_quotas_reject_with_429() {
    let mut server = spawn(
        small_engine(),
        ServerConfig {
            quota: Some(Quota {
                burst: 2,
                per_sec: 0.1,
            }),
            ..ServerConfig::default()
        },
    );
    let addr = server.addr();
    let q = "SELECT ?x ?z WHERE { ?x <http://e/teaches> ?z }";
    let statuses: Vec<u16> = (0..5).map(|_| sparql_get(addr, q, "").status).collect();
    assert_eq!(&statuses[..2], &[200, 200], "burst admitted");
    assert!(
        statuses[2..].iter().all(|&s| s == 429),
        "over-quota rejected: {statuses:?}"
    );
    let rejects = metric_value(addr, "parj_server_quota_rejects_total", "").unwrap();
    assert_eq!(rejects, 3);
    // Quota rejects are not sheds.
    assert_eq!(metric_value(addr, "parj_server_shed_total", ""), Some(0));
    assert_eq!(server.shutdown().leaked, 0);
}

#[test]
fn disconnecting_client_cancels_its_query() {
    let engine = fanout_engine(700); // ~490k rows: a long-running query
    let mut server = spawn(
        Arc::clone(&engine),
        ServerConfig {
            permits: 1,
            ..ServerConfig::default()
        },
    );
    let addr = server.addr();

    // Fire the slow query and immediately drop the connection.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(
            format!(
                "GET /sparql?query={} HTTP/1.1\r\nHost: t\r\n\r\n",
                urlencode(FANOUT_QUERY)
            )
            .as_bytes(),
        )
        .unwrap();
    drop(stream);

    // The watcher notices the close, cancels the token, and the
    // engine records a cancelled query — within a bounded wait.
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut cancelled = 0;
    while Instant::now() < deadline {
        cancelled = metric_value(addr, "parj_queries_total", "{outcome=\"cancelled\"}")
            .unwrap_or(0);
        if cancelled >= 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(
        cancelled >= 1,
        "abandoned connection must cancel its in-flight query"
    );
    // The permit was freed: the server still serves (same single
    // permit) and drains clean.
    assert_eq!(metric_value(addr, "parj_server_inflight", ""), Some(0));
    assert_eq!(server.shutdown().leaked, 0);
}
