//! SPARQL Protocol conformance: request forms, serializations, status
//! mapping, operational endpoints, and graceful shutdown.

mod common;

use std::sync::Arc;
use std::time::Duration;

use common::*;
use parj_server::{sparql, ServerConfig};

const TEACHES: &str = "SELECT ?x ?z WHERE { ?x <http://e/teaches> ?z }";

#[test]
fn get_query_answers_sparql_json_identical_to_direct_run() {
    let engine = small_engine();
    let mut server = spawn(Arc::clone(&engine), ServerConfig::default());
    let resp = sparql_get(server.addr(), TEACHES, "");
    assert_eq!(resp.status, 200);
    assert_eq!(
        resp.header("content-type"),
        Some("application/sparql-results+json")
    );
    // The served body must be byte-identical to serializing a direct
    // engine run (the cache is on for both, so ordering is stable).
    let direct = engine.request(TEACHES).run().unwrap();
    assert_eq!(resp.body, sparql::to_sparql_json(&direct).into_bytes());
    assert!(resp.body_str().contains("\"vars\":[\"x\",\"z\"]"));
    let report = server.shutdown();
    assert_eq!(report.leaked, 0);
}

#[test]
fn post_forms_and_raw_query_bodies_are_accepted() {
    let engine = small_engine();
    let mut server = spawn(engine, ServerConfig::default());
    let addr = server.addr();

    let form = format!("query={}", urlencode(TEACHES));
    let resp = send_raw(
        addr,
        format!(
            "POST /sparql HTTP/1.1\r\nHost: t\r\nContent-Type: application/x-www-form-urlencoded\r\nContent-Length: {}\r\n\r\n{form}",
            form.len()
        )
        .as_bytes(),
    )
    .unwrap();
    assert_eq!(resp.status, 200);

    let resp = send_raw(
        addr,
        format!(
            "POST /sparql HTTP/1.1\r\nHost: t\r\nContent-Type: application/sparql-query\r\nContent-Length: {}\r\n\r\n{TEACHES}",
            TEACHES.len()
        )
        .as_bytes(),
    )
    .unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(server.shutdown().leaked, 0);
}

#[test]
fn tsv_via_accept_header_and_format_param() {
    let engine = small_engine();
    let mut server = spawn(Arc::clone(&engine), ServerConfig::default());
    let addr = server.addr();

    let resp = send_raw(
        addr,
        format!(
            "GET /sparql?query={} HTTP/1.1\r\nHost: t\r\nAccept: text/tab-separated-values\r\n\r\n",
            urlencode(TEACHES)
        )
        .as_bytes(),
    )
    .unwrap();
    assert_eq!(resp.status, 200);
    assert!(resp
        .header("content-type")
        .unwrap()
        .starts_with("text/tab-separated-values"));
    assert!(resp.body_str().starts_with("?x\t?z\n"));

    let via_param = sparql_get(addr, TEACHES, "&format=tsv");
    assert_eq!(via_param.status, 200);
    let direct = engine.request(TEACHES).run().unwrap();
    assert_eq!(via_param.body, sparql::to_tsv(&direct).into_bytes());
    assert_eq!(server.shutdown().leaked, 0);
}

#[test]
fn error_statuses_are_deterministic() {
    let engine = small_engine();
    let mut server = spawn(engine, ServerConfig::default());
    let addr = server.addr();

    // Parse error → 400.
    let resp = sparql_get(addr, "SELECT WHERE garbage {", "");
    assert_eq!(resp.status, 400);
    // Missing query parameter → 400 naming the parameter.
    let resp = get(addr, "/sparql");
    assert_eq!(resp.status, 400);
    assert!(resp.body_str().contains("query"));
    // Row budget → 413 (the teaches query has 8 rows).
    let resp = sparql_get(addr, TEACHES, "&max-rows=2");
    assert_eq!(resp.status, 413);
    // Invalid option values → 400.
    assert_eq!(sparql_get(addr, TEACHES, "&timeout=-3").status, 400);
    assert_eq!(sparql_get(addr, TEACHES, "&max-rows=0").status, 400);
    assert_eq!(sparql_get(addr, TEACHES, "&format=xml").status, 400);
    // Unknown path → 404; unsupported method → 405 with Allow.
    assert_eq!(get(addr, "/no-such").status, 404);
    let resp = send_raw(addr, b"DELETE /sparql HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
    assert_eq!(resp.status, 405);
    assert!(resp.header("allow").is_some());
    assert_eq!(server.shutdown().leaked, 0);
}

#[test]
fn operational_endpoints() {
    let engine = small_engine();
    let mut server = spawn(engine, ServerConfig::default());
    let addr = server.addr();

    assert_eq!(get(addr, "/healthz").status, 200);
    let ready = get(addr, "/readyz");
    assert_eq!(ready.status, 200);
    assert!(ready.body_str().contains("16 triples"), "{}", ready.body_str());

    // HEAD answers the same headers with no body.
    let head = send_raw(addr, b"HEAD /healthz HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
    assert_eq!(head.status, 200);
    assert!(head.body.is_empty());

    // /metrics merges engine and server families on one page.
    sparql_get(addr, TEACHES, "");
    let metrics = get(addr, "/metrics");
    assert_eq!(metrics.status, 200);
    let text = metrics.body_str();
    assert!(text.contains("# TYPE parj_queries_total counter"), "engine family present");
    assert!(text.contains("# TYPE parj_server_responses_total counter"), "server family present");
    assert!(
        metric_value(addr, "parj_server_responses_total", "{status=\"200\"}").unwrap() >= 1
    );
    assert_eq!(server.shutdown().leaked, 0);
}

#[test]
fn per_request_cache_bypass_is_honored() {
    let engine = small_engine();
    let mut server = spawn(Arc::clone(&engine), ServerConfig::default());
    let addr = server.addr();
    // Warm the cache, then issue a bypassed run: both answer 200 with
    // identical bodies; the bypass shows up in the engine's metrics.
    let warm = sparql_get(addr, TEACHES, "");
    let bypass = sparql_get(addr, TEACHES, "&no-cache=1");
    assert_eq!(warm.status, 200);
    assert_eq!(bypass.status, 200);
    assert_eq!(warm.body, bypass.body);
    assert_eq!(server.shutdown().leaked, 0);
}

#[test]
fn graceful_shutdown_drains_and_refuses_new_work() {
    let engine = small_engine();
    let mut server = spawn(engine, ServerConfig::default());
    let addr = server.addr();
    assert_eq!(sparql_get(addr, TEACHES, "").status, 200);
    let report = server.shutdown();
    assert_eq!(report.leaked, 0, "healthy shutdown leaks nothing");
    // The listener is gone: new connections are refused.
    assert!(std::net::TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err());
    // Shutdown is idempotent.
    assert_eq!(server.shutdown().leaked, 0);
}
