//! Parsed query AST.

use parj_dict::Term;

/// A term slot in a triple pattern: a named variable or a concrete term
/// (IRI/literal), with prefixed names already expanded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum STerm {
    /// `?name`.
    Var(String),
    /// A constant RDF term.
    Term(Term),
}

impl STerm {
    /// The variable name if this is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            STerm::Var(v) => Some(v),
            STerm::Term(_) => None,
        }
    }
}

/// One triple pattern of a BGP.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TriplePattern {
    /// Subject slot.
    pub s: STerm,
    /// Predicate slot.
    pub p: STerm,
    /// Object slot.
    pub o: STerm,
}

/// A parsed query: one BGP with projection/modifiers, prefixes expanded
/// and `FILTER (?v = const)` already folded into the patterns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedQuery {
    /// `SELECT DISTINCT`?
    pub distinct: bool,
    /// Projected variable names in order; `None` means `SELECT *`
    /// (all variables in first-occurrence order). `ASK` parses to
    /// `Some(vec![])` with `limit = Some(1)`.
    pub projection: Option<Vec<String>>,
    /// All triple patterns, flattened across UNION branches (the
    /// variable inventory; use [`ParsedQuery::branches`] for execution
    /// structure).
    pub patterns: Vec<TriplePattern>,
    /// The UNION branches: one BGP each. Queries without `UNION` have
    /// exactly one branch (equal to `patterns`).
    pub branches: Vec<Vec<TriplePattern>>,
    /// `ORDER BY` keys: `(variable, descending)`, in priority order.
    /// Ordering is by the terms' canonical string form (a deterministic
    /// total order; full SPARQL operator ordering is out of scope).
    pub order_by: Vec<(String, bool)>,
    /// `OFFSET n`, if present (applied after ordering, before LIMIT).
    pub offset: Option<usize>,
    /// `LIMIT n`, if present.
    pub limit: Option<usize>,
}

impl ParsedQuery {
    /// All distinct variable names in first-occurrence order across the
    /// patterns.
    pub fn all_vars(&self) -> Vec<String> {
        let mut seen = Vec::new();
        for pat in &self.patterns {
            for slot in [&pat.s, &pat.p, &pat.o] {
                if let STerm::Var(v) = slot {
                    if !seen.iter().any(|s| s == v) {
                        seen.push(v.clone());
                    }
                }
            }
        }
        seen
    }

    /// The effective projection: explicit list, or all variables for
    /// `SELECT *`.
    pub fn effective_projection(&self) -> Vec<String> {
        match &self.projection {
            Some(vars) => vars.clone(),
            None => self.all_vars(),
        }
    }
}
