//! # parj-sparql — SPARQL BGP front end
//!
//! A hand-written tokenizer and recursive-descent parser for the SPARQL
//! subset PARJ evaluates (the paper's workloads are Basic Graph Pattern
//! `SELECT` queries — LUBM 1–10, WatDiv basic/IL/ML):
//!
//! * `PREFIX` declarations and prefixed names,
//! * `SELECT [DISTINCT] (?v… | *)`, `ASK`,
//! * `WHERE { … }` with `.`-separated triple patterns and the `;` / `,`
//!   predicate-object / object-list abbreviations, the `a` keyword,
//! * IRIs, numeric/string/lang/typed literals,
//! * `FILTER (?v = <iri> | literal)` equality sugar (folded into the BGP
//!   as a constant binding),
//! * `LIMIT n`.
//!
//! Anything beyond the subset (OPTIONAL, UNION, property paths, …) is a
//! parse error with a position — no silent misparsing.
//!
//! ```
//! use parj_sparql::{parse_query, STerm};
//!
//! let q = parse_query(r#"
//!     PREFIX ub: <http://example.org/univ#>
//!     SELECT ?x ?y WHERE {
//!         ?x ub:worksFor ?y ;
//!            a ub:Professor .
//!     }
//! "#).unwrap();
//! assert_eq!(q.projection.as_deref(), Some(&["x".to_string(), "y".to_string()][..]));
//! assert_eq!(q.patterns.len(), 2);
//! assert!(matches!(q.patterns[1].p, STerm::Term(_))); // `a` → rdf:type
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod parser;
mod token;

pub use ast::{ParsedQuery, STerm, TriplePattern};
pub use parser::parse_query;
pub use token::{SparqlError, Token, TokenKind};

/// The `rdf:type` IRI that the `a` keyword abbreviates.
pub const RDF_TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
/// The `xsd:integer` datatype used for bare integer literals.
pub const XSD_INTEGER: &str = "http://www.w3.org/2001/XMLSchema#integer";
/// The `xsd:decimal` datatype used for bare decimal literals.
pub const XSD_DECIMAL: &str = "http://www.w3.org/2001/XMLSchema#decimal";
