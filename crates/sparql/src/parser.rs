//! Recursive-descent parser for the supported SPARQL subset.

use std::collections::HashMap;

use parj_dict::Term;

use crate::ast::{ParsedQuery, STerm, TriplePattern};
use crate::token::{Lexer, SparqlError, Token, TokenKind};
use crate::{RDF_TYPE, XSD_DECIMAL, XSD_INTEGER};

/// Parses a SPARQL `SELECT`/`ASK` BGP query.
pub fn parse_query(src: &str) -> Result<ParsedQuery, SparqlError> {
    let tokens = Lexer::new(src).tokenize()?;
    Parser {
        tokens,
        pos: 0,
        prefixes: HashMap::new(),
    }
    .query()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    prefixes: HashMap<String, String>,
}

/// A `FILTER (?v = const)` constraint collected during parsing.
struct EqFilter {
    var: String,
    term: Term,
}

/// One UNION branch: its triple patterns plus the filters declared
/// inside it.
type Branch = (Vec<TriplePattern>, Vec<EqFilter>);

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn err_at(&self, t: &Token, message: impl Into<String>) -> SparqlError {
        SparqlError {
            line: t.line,
            column: t.column,
            message: message.into(),
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<(), SparqlError> {
        let t = self.bump();
        if &t.kind == kind {
            Ok(())
        } else {
            Err(self.err_at(&t, format!("expected {kind}, found {}", t.kind)))
        }
    }

    fn is_keyword(&self, kw: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.is_keyword(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expand_prefixed(&self, t: &Token, prefix: &str, local: &str) -> Result<String, SparqlError> {
        match self.prefixes.get(prefix) {
            Some(ns) => Ok(format!("{ns}{local}")),
            None => Err(self.err_at(t, format!("undeclared prefix `{prefix}:`"))),
        }
    }

    /// Parses one term slot (variable or constant).
    fn sterm(&mut self) -> Result<STerm, SparqlError> {
        let t = self.bump();
        match t.kind.clone() {
            TokenKind::Var(v) => Ok(STerm::Var(v)),
            TokenKind::Iri(iri) => Ok(STerm::Term(Term::iri(iri))),
            TokenKind::PrefixedName(p, l) => {
                Ok(STerm::Term(Term::iri(self.expand_prefixed(&t, &p, &l)?)))
            }
            TokenKind::Ident(ref s) if s == "a" => Ok(STerm::Term(Term::iri(RDF_TYPE))),
            TokenKind::Literal {
                lexical,
                lang,
                datatype,
            } => {
                let term = match (lang, datatype) {
                    (Some(lang), _) => Term::lang_literal(lexical, lang),
                    (None, Some(dt)) => {
                        let dt_iri = match *dt {
                            TokenKind::Iri(i) => i,
                            TokenKind::PrefixedName(p, l) => self.expand_prefixed(&t, &p, &l)?,
                            _ => unreachable!("lexer only emits IRI/prefixed datatype"),
                        };
                        Term::typed_literal(lexical, dt_iri)
                    }
                    (None, None) => Term::literal(lexical),
                };
                Ok(STerm::Term(term))
            }
            TokenKind::Integer(n) => Ok(STerm::Term(Term::typed_literal(n.to_string(), XSD_INTEGER))),
            TokenKind::Decimal(d) => Ok(STerm::Term(Term::typed_literal(d, XSD_DECIMAL))),
            other => Err(self.err_at(&t, format!("expected term, found {other}"))),
        }
    }

    /// Parses `FILTER ( ?v = const )` (and the reversed `const = ?v`).
    fn filter(&mut self) -> Result<EqFilter, SparqlError> {
        self.expect(&TokenKind::LParen)?;
        let lhs = self.sterm()?;
        self.expect(&TokenKind::Eq)?;
        let rhs = self.sterm()?;
        self.expect(&TokenKind::RParen)?;
        match (lhs, rhs) {
            (STerm::Var(v), STerm::Term(t)) | (STerm::Term(t), STerm::Var(v)) => {
                Ok(EqFilter { var: v, term: t })
            }
            _ => {
                let t = self.peek().clone();
                Err(self.err_at(
                    &t,
                    "only FILTER (?var = <constant>) equality is supported",
                ))
            }
        }
    }

    /// Parses a group graph pattern between braces.
    fn group(&mut self) -> Result<Branch, SparqlError> {
        self.expect(&TokenKind::LBrace)?;
        self.group_body()
    }

    /// Parses `{ … }` that is either a plain BGP or a
    /// `{ A } UNION { B } UNION …` chain of sub-groups (the standard
    /// SPARQL GroupOrUnionGraphPattern, restricted to the top level of
    /// the WHERE clause). Returns one `(patterns, filters)` per branch.
    fn group_or_union(&mut self) -> Result<Vec<Branch>, SparqlError> {
        self.expect(&TokenKind::LBrace)?;
        if self.peek().kind == TokenKind::LBrace {
            let mut branches = vec![self.group()?];
            while self.eat_keyword("UNION") {
                branches.push(self.group()?);
            }
            let t = self.peek().clone();
            if t.kind != TokenKind::RBrace {
                return Err(self.err_at(
                    &t,
                    "UNION groups cannot mix with plain triple patterns; \
                     close the group here",
                ));
            }
            self.bump();
            Ok(branches)
        } else {
            Ok(vec![self.group_body()?])
        }
    }

    /// Parses group statements up to and including the closing brace
    /// (the opening brace is already consumed).
    fn group_body(&mut self) -> Result<Branch, SparqlError> {
        let mut patterns = Vec::new();
        let mut filters = Vec::new();
        loop {
            if self.peek().kind == TokenKind::RBrace {
                self.bump();
                break;
            }
            if self.eat_keyword("FILTER") {
                filters.push(self.filter()?);
                // Optional trailing dot after a filter.
                if self.peek().kind == TokenKind::Dot {
                    self.bump();
                }
                continue;
            }
            for kw in ["OPTIONAL", "UNION", "GRAPH", "MINUS", "SERVICE", "BIND", "VALUES"] {
                if self.is_keyword(kw) {
                    let t = self.peek().clone();
                    return Err(self.err_at(
                        &t,
                        format!("{kw} is outside the supported BGP subset"),
                    ));
                }
            }
            // subject (predicate object (, object)*) (; predicate ...)* .
            let s = self.sterm()?;
            loop {
                let p = self.sterm()?;
                loop {
                    let o = self.sterm()?;
                    patterns.push(TriplePattern {
                        s: s.clone(),
                        p: p.clone(),
                        o,
                    });
                    if self.peek().kind == TokenKind::Comma {
                        self.bump();
                        continue;
                    }
                    break;
                }
                if self.peek().kind == TokenKind::Semicolon {
                    self.bump();
                    // Allow a dangling `;` before `.` or `}` (common in
                    // the wild).
                    if matches!(self.peek().kind, TokenKind::Dot | TokenKind::RBrace) {
                        break;
                    }
                    continue;
                }
                break;
            }
            match self.peek().kind {
                TokenKind::Dot => {
                    self.bump();
                }
                TokenKind::RBrace => {}
                _ => {
                    let t = self.peek().clone();
                    return Err(self.err_at(&t, format!("expected `.` or `}}`, found {}", t.kind)));
                }
            }
        }
        Ok((patterns, filters))
    }

    fn query(&mut self) -> Result<ParsedQuery, SparqlError> {
        // PREFIX declarations.
        loop {
            if self.eat_keyword("PREFIX") {
                let t = self.bump();
                let prefix = match t.kind {
                    // `ub:` lexes as PrefixedName("ub", "").
                    TokenKind::PrefixedName(ref p, ref l) if l.is_empty() => p.clone(),
                    _ => return Err(self.err_at(&t, "expected `prefix:` after PREFIX")),
                };
                let t = self.bump();
                let iri = match t.kind {
                    TokenKind::Iri(ref i) => i.clone(),
                    _ => return Err(self.err_at(&t, "expected <iri> after prefix name")),
                };
                self.prefixes.insert(prefix, iri);
            } else if self.eat_keyword("BASE") {
                let t = self.peek().clone();
                return Err(self.err_at(&t, "BASE is not supported; use absolute IRIs"));
            } else {
                break;
            }
        }

        // Query form.
        let (distinct, projection, is_ask) = if self.eat_keyword("SELECT") {
            let distinct = self.eat_keyword("DISTINCT");
            if self.eat_keyword("REDUCED") {
                // REDUCED is a weaker DISTINCT; treat identically.
            }
            let projection = if self.peek().kind == TokenKind::Star {
                self.bump();
                None
            } else {
                let mut vars = Vec::new();
                while let TokenKind::Var(v) = &self.peek().kind {
                    vars.push(v.clone());
                    self.bump();
                }
                if vars.is_empty() {
                    let t = self.peek().clone();
                    return Err(self.err_at(&t, "SELECT needs variables or *"));
                }
                Some(vars)
            };
            (distinct, projection, false)
        } else if self.eat_keyword("ASK") {
            (false, Some(Vec::new()), true)
        } else {
            let t = self.peek().clone();
            return Err(self.err_at(&t, format!("expected SELECT or ASK, found {}", t.kind)));
        };

        // WHERE is optional before the group in SPARQL.
        self.eat_keyword("WHERE");
        // `{ { A } UNION { B } … }` or a plain group; filters fold into
        // their own branch.
        let branches_raw = self.group_or_union()?;

        // Solution modifiers.
        let mut limit = if is_ask { Some(1) } else { None };
        let mut offset = None;
        let mut order_by: Vec<(String, bool)> = Vec::new();
        loop {
            if self.eat_keyword("LIMIT") {
                let t = self.bump();
                match t.kind {
                    TokenKind::Integer(n) if n >= 0 => limit = Some(n as usize),
                    _ => return Err(self.err_at(&t, "expected nonnegative integer after LIMIT")),
                }
            } else if self.eat_keyword("OFFSET") {
                let t = self.bump();
                match t.kind {
                    TokenKind::Integer(n) if n >= 0 => offset = Some(n as usize),
                    _ => return Err(self.err_at(&t, "expected nonnegative integer after OFFSET")),
                }
            } else if self.eat_keyword("ORDER") {
                if !self.eat_keyword("BY") {
                    let t = self.peek().clone();
                    return Err(self.err_at(&t, "expected BY after ORDER"));
                }
                loop {
                    let desc = if self.eat_keyword("DESC") {
                        self.expect(&TokenKind::LParen)?;
                        true
                    } else if self.eat_keyword("ASC") {
                        self.expect(&TokenKind::LParen)?;
                        false
                    } else if matches!(self.peek().kind, TokenKind::Var(_)) {
                        // Bare variable key.
                        let TokenKind::Var(v) = self.bump().kind else {
                            unreachable!("peeked a var");
                        };
                        order_by.push((v, false));
                        continue;
                    } else {
                        break;
                    };
                    let t = self.bump();
                    let TokenKind::Var(v) = t.kind else {
                        return Err(self.err_at(&t, "expected ?variable inside ASC()/DESC()"));
                    };
                    self.expect(&TokenKind::RParen)?;
                    order_by.push((v, desc));
                }
                if order_by.is_empty() {
                    let t = self.peek().clone();
                    return Err(self.err_at(&t, "ORDER BY needs at least one ?variable key"));
                }
            } else if self.eat_keyword("GROUP") {
                let t = self.peek().clone();
                return Err(self.err_at(&t, "GROUP BY is outside the supported subset"));
            } else {
                break;
            }
        }
        let t = self.peek().clone();
        if t.kind != TokenKind::Eof {
            return Err(self.err_at(&t, format!("unexpected trailing {}", t.kind)));
        }

        // Fold each branch's equality filters into its patterns
        // (constant substitution).
        let mut branches: Vec<Vec<TriplePattern>> = Vec::with_capacity(branches_raw.len());
        for (mut patterns, filters) in branches_raw {
            for f in &filters {
                let mut used = false;
                for pat in &mut patterns {
                    for slot in [&mut pat.s, &mut pat.p, &mut pat.o] {
                        if slot.as_var() == Some(f.var.as_str()) {
                            *slot = STerm::Term(f.term.clone());
                            used = true;
                        }
                    }
                }
                if !used {
                    return Err(SparqlError {
                        line: 1,
                        column: 1,
                        message: format!("FILTER references unknown variable ?{}", f.var),
                    });
                }
                if let Some(proj) = &projection {
                    if proj.iter().any(|v| v == &f.var) {
                        return Err(SparqlError {
                            line: 1,
                            column: 1,
                            message: format!(
                                "?{} is both projected and fixed by a FILTER; \
                                 remove it from SELECT",
                                f.var
                            ),
                        });
                    }
                }
            }
            if patterns.is_empty() {
                return Err(SparqlError {
                    line: 1,
                    column: 1,
                    message: "empty basic graph pattern".into(),
                });
            }
            branches.push(patterns);
        }
        let patterns: Vec<TriplePattern> = branches.iter().flatten().cloned().collect();

        // ORDER BY keys must reference variables the query binds.
        for (v, _) in &order_by {
            let known = patterns.iter().any(|p| {
                [&p.s, &p.p, &p.o]
                    .into_iter()
                    .any(|s| s.as_var() == Some(v.as_str()))
            });
            if !known {
                return Err(SparqlError {
                    line: 1,
                    column: 1,
                    message: format!("ORDER BY references unknown variable ?{v}"),
                });
            }
        }

        Ok(ParsedQuery {
            distinct,
            projection,
            patterns,
            branches,
            order_by,
            offset,
            limit,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_star_simple() {
        let q = parse_query("SELECT * WHERE { ?s <http://e/p> ?o . }").unwrap();
        assert_eq!(q.projection, None);
        assert_eq!(q.patterns.len(), 1);
        assert_eq!(q.effective_projection(), vec!["s", "o"]);
        assert!(!q.distinct);
        assert_eq!(q.limit, None);
    }

    #[test]
    fn prefixes_expand() {
        let q = parse_query(
            "PREFIX ub: <http://univ#>\nSELECT ?x WHERE { ?x ub:worksFor ub:U1 . }",
        )
        .unwrap();
        assert_eq!(
            q.patterns[0].p,
            STerm::Term(Term::iri("http://univ#worksFor"))
        );
        assert_eq!(q.patterns[0].o, STerm::Term(Term::iri("http://univ#U1")));
    }

    #[test]
    fn semicolon_comma_abbreviations() {
        let q = parse_query(
            "SELECT * WHERE { ?x <http://e/p> ?a , ?b ; <http://e/q> ?c . ?y <http://e/r> ?x . }",
        )
        .unwrap();
        assert_eq!(q.patterns.len(), 4);
        assert_eq!(q.patterns[0].s, q.patterns[1].s);
        assert_eq!(q.patterns[0].p, q.patterns[1].p);
        assert_eq!(q.patterns[2].p, STerm::Term(Term::iri("http://e/q")));
        assert_eq!(q.patterns[3].s, STerm::Var("y".into()));
    }

    #[test]
    fn a_keyword_is_rdf_type() {
        let q = parse_query("SELECT ?x WHERE { ?x a <http://e/Class> . }").unwrap();
        assert_eq!(q.patterns[0].p, STerm::Term(Term::iri(crate::RDF_TYPE)));
    }

    #[test]
    fn literals_and_numbers() {
        let q = parse_query(
            r#"SELECT ?x WHERE { ?x <http://e/name> "Alice"@en . ?x <http://e/age> 42 . ?x <http://e/gpa> 3.5 . }"#,
        )
        .unwrap();
        assert_eq!(
            q.patterns[0].o,
            STerm::Term(Term::lang_literal("Alice", "en"))
        );
        assert_eq!(
            q.patterns[1].o,
            STerm::Term(Term::typed_literal("42", crate::XSD_INTEGER))
        );
        assert_eq!(
            q.patterns[2].o,
            STerm::Term(Term::typed_literal("3.5", crate::XSD_DECIMAL))
        );
    }

    #[test]
    fn distinct_and_limit() {
        let q = parse_query("SELECT DISTINCT ?x WHERE { ?x <http://e/p> ?y } LIMIT 10").unwrap();
        assert!(q.distinct);
        assert_eq!(q.limit, Some(10));
    }

    #[test]
    fn ask_form() {
        let q = parse_query("ASK { <http://e/a> <http://e/p> <http://e/b> }").unwrap();
        assert_eq!(q.projection, Some(vec![]));
        assert_eq!(q.limit, Some(1));
    }

    #[test]
    fn filter_folds_to_constant() {
        // Example 3.2's query shape.
        let q = parse_query(
            "PREFIX e: <http://e/> SELECT ?x ?z WHERE { ?x e:teaches ?z . ?x e:worksFor ?y . FILTER (?y = e:University1) }",
        )
        .unwrap();
        assert_eq!(q.patterns[1].o, STerm::Term(Term::iri("http://e/University1")));
    }

    #[test]
    fn missing_final_dot_is_ok() {
        let q = parse_query("SELECT * WHERE { ?s ?p ?o }").unwrap();
        assert_eq!(q.patterns.len(), 1);
        // Variable predicate is representable.
        assert_eq!(q.patterns[0].p, STerm::Var("p".into()));
    }

    #[test]
    fn error_cases() {
        // Undeclared prefix.
        assert!(parse_query("SELECT ?x WHERE { ?x ub:p ?y }").is_err());
        // Unsupported features fail loudly.
        assert!(parse_query("SELECT ?x WHERE { OPTIONAL { ?x <http://e/p> ?y } }").is_err());
        // ORDER BY with a bogus variable is rejected.
        assert!(parse_query("SELECT ?x WHERE { ?x <http://e/p> ?y } ORDER BY ?zz").is_err());
        assert!(parse_query("SELECT ?x WHERE { ?x <http://e/p> ?y } GROUP BY ?x").is_err());
        // Not a query.
        assert!(parse_query("INSERT DATA { }").is_err());
        // Empty BGP.
        assert!(parse_query("SELECT * WHERE { }").is_err());
        // Missing SELECT vars.
        assert!(parse_query("SELECT WHERE { ?s ?p ?o }").is_err());
        // Trailing garbage.
        assert!(parse_query("SELECT * WHERE { ?s ?p ?o } garbage").is_err());
        // Filter over unknown var.
        assert!(parse_query(
            "SELECT ?x WHERE { ?x <http://e/p> ?y . FILTER(?zz = <http://e/a>) }"
        )
        .is_err());
        // Projected var fixed by filter.
        assert!(parse_query(
            "SELECT ?y WHERE { ?x <http://e/p> ?y . FILTER(?y = <http://e/a>) }"
        )
        .is_err());
    }

    #[test]
    fn error_position_quality() {
        let e = parse_query("SELECT ?x WHERE { ?x <http://e/p> }").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.column >= 34, "column {}", e.column);
    }

    #[test]
    fn dangling_semicolon_tolerated() {
        let q = parse_query("SELECT * WHERE { ?x <http://e/p> ?y ; . }").unwrap();
        assert_eq!(q.patterns.len(), 1);
    }
}

#[cfg(test)]
mod union_tests {
    use super::*;

    #[test]
    fn union_branches_parse() {
        let q = parse_query(
            "PREFIX e: <http://e/> SELECT ?x WHERE { { ?x e:p ?y } UNION { ?x e:q ?y } UNION { ?x e:r ?y } }",
        )
        .unwrap();
        assert_eq!(q.branches.len(), 3);
        assert_eq!(q.patterns.len(), 3);
        assert_eq!(q.branches[1][0].p, STerm::Term(Term::iri("http://e/q")));
    }

    #[test]
    fn union_with_filters_and_abbreviations() {
        let q = parse_query(
            "PREFIX e: <http://e/> SELECT ?x WHERE { \
             { ?x e:p ?y ; e:q ?z . FILTER(?z = e:c) } UNION { ?x e:r ?y } }",
        )
        .unwrap();
        assert_eq!(q.branches.len(), 2);
        assert_eq!(q.branches[0].len(), 2);
        // The filter folded into the first branch only.
        assert_eq!(q.branches[0][1].o, STerm::Term(Term::iri("http://e/c")));
    }

    #[test]
    fn plain_group_is_single_branch() {
        let q = parse_query("SELECT * WHERE { ?s ?p ?o }").unwrap();
        assert_eq!(q.branches.len(), 1);
        assert_eq!(q.branches[0], q.patterns);
    }

    #[test]
    fn union_rejects_mixing_with_patterns() {
        assert!(parse_query(
            "PREFIX e: <http://e/> SELECT ?x WHERE { { ?x e:p ?y } UNION { ?x e:q ?y } ?x e:r ?y }"
        )
        .is_err());
        // UNION keyword inside a plain body is still rejected.
        assert!(parse_query(
            "PREFIX e: <http://e/> SELECT ?x WHERE { ?x e:p ?y UNION { ?x e:q ?y } }"
        )
        .is_err());
        // Empty branch.
        assert!(parse_query("SELECT ?x WHERE { { ?x <http://e/p> ?y } UNION { } }").is_err());
    }
}
