//! SPARQL tokenizer.

use std::fmt;

/// A lexical token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub column: usize,
}

/// Token kinds for the supported SPARQL subset.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Bare identifier / keyword (`SELECT`, `WHERE`, `a`, …), original
    /// spelling preserved.
    Ident(String),
    /// `?name` or `$name`.
    Var(String),
    /// `<iri>`.
    Iri(String),
    /// `prefix:local` (either part may be empty).
    PrefixedName(String, String),
    /// String literal with optional language tag or datatype IRI
    /// (datatype may itself be a prefixed name, kept raw here).
    Literal {
        /// Unescaped lexical form.
        lexical: String,
        /// `@lang`, if present.
        lang: Option<String>,
        /// `^^<iri>` or `^^pfx:local`, kept as the raw token.
        datatype: Option<Box<TokenKind>>,
    },
    /// Unsigned integer literal.
    Integer(i64),
    /// Decimal literal, original text preserved.
    Decimal(String),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `.`
    Dot,
    /// `;`
    Semicolon,
    /// `,`
    Comma,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "`{s}`"),
            TokenKind::Var(v) => write!(f, "?{v}"),
            TokenKind::Iri(i) => write!(f, "<{i}>"),
            TokenKind::PrefixedName(p, l) => write!(f, "{p}:{l}"),
            TokenKind::Literal { lexical, .. } => write!(f, "\"{lexical}\""),
            TokenKind::Integer(n) => write!(f, "{n}"),
            TokenKind::Decimal(d) => write!(f, "{d}"),
            TokenKind::LBrace => write!(f, "{{"),
            TokenKind::RBrace => write!(f, "}}"),
            TokenKind::LParen => write!(f, "("),
            TokenKind::RParen => write!(f, ")"),
            TokenKind::Dot => write!(f, "."),
            TokenKind::Semicolon => write!(f, ";"),
            TokenKind::Comma => write!(f, ","),
            TokenKind::Star => write!(f, "*"),
            TokenKind::Eq => write!(f, "="),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// Parse/lex error with source position.
#[derive(Debug, Clone, PartialEq)]
pub struct SparqlError {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub column: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for SparqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SPARQL error at {}:{}: {}", self.line, self.column, self.message)
    }
}

impl std::error::Error for SparqlError {}

pub(crate) struct Lexer<'a> {
    src: &'a str,
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    line: usize,
    col: usize,
}

impl<'a> Lexer<'a> {
    pub fn new(src: &'a str) -> Self {
        Self {
            src,
            chars: src.char_indices().peekable(),
            line: 1,
            col: 1,
        }
    }

    fn err(&self, message: impl Into<String>) -> SparqlError {
        SparqlError {
            line: self.line,
            column: self.col,
            message: message.into(),
        }
    }

    fn bump(&mut self) -> Option<(usize, char)> {
        let next = self.chars.next();
        if let Some((_, c)) = next {
            if c == '\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
        }
        next
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().map(|&(_, c)| c)
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('#') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => break,
            }
        }
    }

    fn name(&mut self, allow_dot_inside: bool) -> String {
        let mut out = String::new();
        while let Some(c) = self.peek() {
            let ok = c.is_alphanumeric() || c == '_' || c == '-'
                || (allow_dot_inside && c == '.' && {
                    // A dot only stays in the name if followed by a name char
                    // (otherwise it terminates the triple).
                    let mut look = self.chars.clone();
                    look.next();
                    matches!(look.peek(), Some(&(_, n)) if n.is_alphanumeric() || n == '_')
                });
            if ok {
                out.push(c);
                self.bump();
            } else {
                break;
            }
        }
        out
    }

    fn string_literal(&mut self) -> Result<String, SparqlError> {
        // Opening quote consumed by caller.
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string literal")),
                Some((_, '"')) => return Ok(out),
                Some((_, '\\')) => match self.bump() {
                    Some((_, 't')) => out.push('\t'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 'r')) => out.push('\r'),
                    Some((_, 'b')) => out.push('\u{8}'),
                    Some((_, 'f')) => out.push('\u{C}'),
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\'')) => out.push('\''),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, 'u')) | Some((_, 'U')) => {
                        return Err(self.err("\\u escapes not supported in query literals"))
                    }
                    other => {
                        return Err(self.err(format!(
                            "bad escape \\{}",
                            other.map(|(_, c)| c).unwrap_or(' ')
                        )))
                    }
                },
                Some((_, c)) => out.push(c),
            }
        }
    }

    pub fn next_token(&mut self) -> Result<Token, SparqlError> {
        self.skip_trivia();
        let line = self.line;
        let column = self.col;
        let mk = |kind| Token { kind, line, column };
        let Some(c) = self.peek() else {
            return Ok(mk(TokenKind::Eof));
        };
        let kind = match c {
            '{' => {
                self.bump();
                TokenKind::LBrace
            }
            '}' => {
                self.bump();
                TokenKind::RBrace
            }
            '(' => {
                self.bump();
                TokenKind::LParen
            }
            ')' => {
                self.bump();
                TokenKind::RParen
            }
            ';' => {
                self.bump();
                TokenKind::Semicolon
            }
            ',' => {
                self.bump();
                TokenKind::Comma
            }
            '*' => {
                self.bump();
                TokenKind::Star
            }
            '=' => {
                self.bump();
                TokenKind::Eq
            }
            '.' => {
                self.bump();
                TokenKind::Dot
            }
            '?' | '$' => {
                self.bump();
                let name = self.name(false);
                if name.is_empty() {
                    return Err(self.err("empty variable name"));
                }
                TokenKind::Var(name)
            }
            '<' => {
                self.bump();
                let mut iri = String::new();
                loop {
                    match self.bump() {
                        None => return Err(self.err("unterminated IRI")),
                        Some((_, '>')) => break,
                        Some((_, c)) if c.is_whitespace() => {
                            return Err(self.err("whitespace inside IRI"))
                        }
                        Some((_, c)) => iri.push(c),
                    }
                }
                TokenKind::Iri(iri)
            }
            '"' => {
                self.bump();
                let lexical = self.string_literal()?;
                match self.peek() {
                    Some('@') => {
                        self.bump();
                        let lang = self.name(false);
                        if lang.is_empty() {
                            return Err(self.err("empty language tag"));
                        }
                        TokenKind::Literal {
                            lexical,
                            lang: Some(lang),
                            datatype: None,
                        }
                    }
                    Some('^') => {
                        self.bump();
                        if self.peek() != Some('^') {
                            return Err(self.err("expected ^^ after literal"));
                        }
                        self.bump();
                        let dt = self.next_token()?;
                        match dt.kind {
                            k @ (TokenKind::Iri(_) | TokenKind::PrefixedName(_, _)) => {
                                TokenKind::Literal {
                                    lexical,
                                    lang: None,
                                    datatype: Some(Box::new(k)),
                                }
                            }
                            other => {
                                return Err(self.err(format!(
                                    "expected datatype IRI after ^^, found {other}"
                                )))
                            }
                        }
                    }
                    _ => TokenKind::Literal {
                        lexical,
                        lang: None,
                        datatype: None,
                    },
                }
            }
            c if c.is_ascii_digit() => {
                let start = self.chars.peek().map(|&(i, _)| i).unwrap_or(self.src.len());
                let mut end = start;
                let mut is_decimal = false;
                while let Some(c) = self.peek() {
                    if c.is_ascii_digit() {
                        end += 1;
                        self.bump();
                    } else if c == '.' && !is_decimal {
                        // Only a decimal point if a digit follows.
                        let mut look = self.chars.clone();
                        look.next();
                        if matches!(look.peek(), Some(&(_, d)) if d.is_ascii_digit()) {
                            is_decimal = true;
                            end += 1;
                            self.bump();
                        } else {
                            break;
                        }
                    } else {
                        break;
                    }
                }
                let text = &self.src[start..end];
                if is_decimal {
                    TokenKind::Decimal(text.to_string())
                } else {
                    TokenKind::Integer(
                        text.parse()
                            .map_err(|_| self.err(format!("integer overflow: {text}")))?,
                    )
                }
            }
            c if c.is_alphanumeric() || c == '_' => {
                let name = self.name(true);
                if self.peek() == Some(':') {
                    self.bump();
                    let local = self.name(true);
                    TokenKind::PrefixedName(name, local)
                } else {
                    TokenKind::Ident(name)
                }
            }
            ':' => {
                // Default-prefix name `:local`.
                self.bump();
                let local = self.name(true);
                TokenKind::PrefixedName(String::new(), local)
            }
            other => return Err(self.err(format!("unexpected character {other:?}"))),
        };
        Ok(mk(kind))
    }

    /// Tokenizes the whole input.
    pub fn tokenize(mut self) -> Result<Vec<Token>, SparqlError> {
        let mut out = Vec::new();
        loop {
            let t = self.next_token()?;
            let done = t.kind == TokenKind::Eof;
            out.push(t);
            if done {
                return Ok(out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new(src)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            kinds("SELECT ?x { } ."),
            vec![
                TokenKind::Ident("SELECT".into()),
                TokenKind::Var("x".into()),
                TokenKind::LBrace,
                TokenKind::RBrace,
                TokenKind::Dot,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn iris_and_prefixed_names() {
        assert_eq!(
            kinds("<http://e/x> ub:Professor :local"),
            vec![
                TokenKind::Iri("http://e/x".into()),
                TokenKind::PrefixedName("ub".into(), "Professor".into()),
                TokenKind::PrefixedName("".into(), "local".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn prefixed_name_with_dots() {
        // `ub:Dept0.Univ0` keeps interior dots; the final dot terminates.
        assert_eq!(
            kinds("ub:Dept0.University0 ."),
            vec![
                TokenKind::PrefixedName("ub".into(), "Dept0.University0".into()),
                TokenKind::Dot,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn literals() {
        assert_eq!(
            kinds(r#""plain" "fr"@fr "5"^^<http://dt> 42 3.25"#),
            vec![
                TokenKind::Literal {
                    lexical: "plain".into(),
                    lang: None,
                    datatype: None
                },
                TokenKind::Literal {
                    lexical: "fr".into(),
                    lang: Some("fr".into()),
                    datatype: None
                },
                TokenKind::Literal {
                    lexical: "5".into(),
                    lang: None,
                    datatype: Some(Box::new(TokenKind::Iri("http://dt".into())))
                },
                TokenKind::Integer(42),
                TokenKind::Decimal("3.25".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn escapes_in_literals() {
        assert_eq!(
            kinds(r#""a\"b\\c\nd""#),
            vec![
                TokenKind::Literal {
                    lexical: "a\"b\\c\nd".into(),
                    lang: None,
                    datatype: None
                },
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("?x # comment\n?y"),
            vec![
                TokenKind::Var("x".into()),
                TokenKind::Var("y".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn errors_carry_position() {
        let e = Lexer::new("?x\n  @").tokenize().unwrap_err();
        assert_eq!((e.line, e.column), (2, 3));
        assert!(Lexer::new("<http://unterminated").tokenize().is_err());
        assert!(Lexer::new("\"unterminated").tokenize().is_err());
        assert!(Lexer::new("? ").tokenize().is_err());
    }

    #[test]
    fn integer_then_dot_terminator() {
        // `42 .` vs `3.25`: the dot must not be eaten as a decimal point.
        assert_eq!(
            kinds("42."),
            vec![TokenKind::Integer(42), TokenKind::Dot, TokenKind::Eof]
        );
    }
}
