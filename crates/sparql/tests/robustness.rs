//! Robustness: the SPARQL parser never panics, and every accepted query
//! re-parses consistently.

use proptest::prelude::*;

use parj_sparql::parse_query;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary unicode garbage never panics the parser.
    #[test]
    fn parser_never_panics(input in "\\PC*") {
        let _ = parse_query(&input);
    }

    /// SPARQL-flavoured token soup never panics.
    #[test]
    fn parser_never_panics_structured(
        parts in proptest::collection::vec(
            prop_oneof![
                Just("SELECT".to_string()),
                Just("ASK".to_string()),
                Just("WHERE".to_string()),
                Just("DISTINCT".to_string()),
                Just("PREFIX e: <http://e/>".to_string()),
                Just("{".to_string()),
                Just("}".to_string()),
                Just("?x".to_string()),
                Just("e:p".to_string()),
                Just("<http://e/x>".to_string()),
                Just("\"lit\"".to_string()),
                Just(".".to_string()),
                Just(";".to_string()),
                Just(",".to_string()),
                Just("*".to_string()),
                Just("FILTER".to_string()),
                Just("(".to_string()),
                Just(")".to_string()),
                Just("=".to_string()),
                Just("LIMIT".to_string()),
                Just("42".to_string()),
                Just("3.5".to_string()),
                Just("a".to_string()),
                "[ -~]{0,6}",
            ],
            0..20,
        )
    ) {
        let q = parts.join(" ");
        let _ = parse_query(&q);
    }

    /// Well-formed generated queries always parse, and their variable
    /// inventory is stable.
    #[test]
    fn generated_queries_parse(
        n_patterns in 1usize..5,
        distinct in any::<bool>(),
        limit in proptest::option::of(0usize..100),
    ) {
        let mut body = String::new();
        for i in 0..n_patterns {
            body.push_str(&format!("?v{i} <http://e/p{i}> ?v{} . ", i + 1));
        }
        let mut q = format!(
            "SELECT {}?v0 WHERE {{ {body}}}",
            if distinct { "DISTINCT " } else { "" },
        );
        if let Some(l) = limit {
            q.push_str(&format!(" LIMIT {l}"));
        }
        let parsed = parse_query(&q).unwrap();
        prop_assert_eq!(parsed.patterns.len(), n_patterns);
        prop_assert_eq!(parsed.distinct, distinct);
        prop_assert_eq!(parsed.limit, limit);
        prop_assert_eq!(parsed.all_vars().len(), n_patterns + 1);
    }
}
