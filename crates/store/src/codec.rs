//! Block-compressed value-run storage: frame-of-reference + bitpacked
//! deltas in fixed 128-value blocks with per-block skip pointers.
//!
//! A [`crate::Replica`] stores each key's sorted value run contiguously.
//! Raw runs cost 4 bytes per value; since runs are strictly increasing
//! (RDF set semantics), consecutive values differ by at least 1 and the
//! gap minus one is usually a small integer — frequently zero for the
//! dense id ranges the dictionary hands out. This module packs each run
//! as:
//!
//! ```text
//! run := varint(header)                           -- run length m comes
//!        ⟨nothing⟩                 if m == 1         from the CSR offsets,
//!        skip-table  block-0-tail  if 1 block        never stored
//!        skip-table  block-tails   if > 1 block
//! header      := first_value                 for the first nonempty run
//!                                            at/after a sample anchor
//!              | zigzag(first − prev_first)  otherwise (wrapping u32)
//! skip-table  := (first: u32 LE, rel_off: u32 LE) per block 1..n
//! block-tail  := width: u8, ⌈(mᵇ−1)·width / 8⌉ bytes of deltas
//! ```
//!
//! Run headers are **delta-coded between sample anchors**: consecutive
//! keys tend to map to nearby ids, so `first − prev_first` is usually a
//! one-byte varint where an absolute first costs three. Every
//! [`SAMPLE`]-th run restarts from an absolute value, which is what
//! keeps random access possible — the positional walk below a sample
//! anchor re-accumulates firsts from the anchor's absolute header.
//!
//! Each block covers up to [`BLOCK_LEN`] values; deltas store
//! `v[i+1] − v[i] − 1` LSB-first at the per-block width (0 bits for
//! consecutive-id runs, which then cost one header byte per block). The
//! skip table lets a probe pick its block by a **clamped galloping
//! search** over block-first values and decode only that block; byte
//! offsets are relative to the end of the skip table. Run byte starts
//! are sampled every [`SAMPLE`] runs — intermediate runs are skipped by
//! an O(1)-per-run header parse — so the positional metadata stays
//! far below one byte per key.
//!
//! The decode prefix-sum and the probe scan are vectorized with
//! `std::arch` SIMD (SSE2 on x86-64, NEON on aarch64) behind **runtime
//! feature detection**; the scalar fallback is bit-identical and is
//! forced by setting the `PARJ_NO_SIMD` environment variable (or by
//! running under Miri). This is the single module in the workspace
//! allowed to contain `unsafe` — the exception is policed by
//! `cargo xtask lint` (see DESIGN.md §18).
#![allow(unsafe_code)]

use parj_dict::Id;

/// Values per compressed block.
pub const BLOCK_LEN: usize = 128;

/// Run-start byte offsets are sampled every `SAMPLE` runs.
pub const SAMPLE: usize = 8;

/// When the galloping block search has sequentially probed this many
/// block-first values without bracketing the target, it starts doubling.
const GALLOP_AFTER: usize = 4;

/// One replica's value area, block-compressed. Logical run lengths are
/// *not* stored here — every accessor takes the CSR `offsets` table the
/// runs were packed from.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PackedValues {
    /// Concatenated run encodings.
    bytes: Vec<u8>,
    /// Byte offset of run `SAMPLE*k`'s encoding, for each `k`.
    samples: Vec<u32>,
    /// Total logical values across all runs.
    num_values: usize,
}

impl PackedValues {
    /// Packs the value area of a CSR replica. `offsets` must be the
    /// replica's offsets table (strictly increasing, first 0, last
    /// `values.len()`), and every run must be strictly increasing.
    pub fn pack(offsets: &[u32], values: &[Id]) -> PackedValues {
        let num_keys = offsets.len().saturating_sub(1);
        let mut bytes = Vec::with_capacity(values.len());
        let mut samples = Vec::with_capacity(num_keys / SAMPLE + 1);
        let mut prev_first: Option<Id> = None;
        for pos in 0..num_keys {
            if pos % SAMPLE == 0 {
                assert!(bytes.len() <= u32::MAX as usize, "packed area exceeds u32 offsets");
                samples.push(bytes.len() as u32);
                // Bucket boundary: the next header is absolute again.
                prev_first = None;
            }
            let run = &values[offsets[pos] as usize..offsets[pos + 1] as usize];
            encode_run(run, prev_first, &mut bytes);
            if let Some(&f) = run.first() {
                prev_first = Some(f);
            }
        }
        PackedValues {
            bytes,
            samples,
            num_values: values.len(),
        }
    }

    /// Total logical values.
    #[inline]
    pub fn num_values(&self) -> usize {
        self.num_values
    }

    /// Bytes used by the packed encoding plus the sample table.
    pub fn memory_bytes(&self) -> usize {
        self.bytes.len() + self.samples.len() * 4
    }

    /// Borrows the run at key position `pos`. `offsets` must be the
    /// same table the values were packed with.
    pub fn run<'a>(&'a self, pos: usize, offsets: &[u32]) -> PackedRun<'a> {
        let len = (offsets[pos + 1] - offsets[pos]) as usize;
        let mut at = self.samples[pos / SAMPLE] as usize;
        let mut prev_first: Option<Id> = None;
        for skip in (pos / SAMPLE) * SAMPLE..pos {
            let m = (offsets[skip + 1] - offsets[skip]) as usize;
            if m > 0 {
                prev_first = Some(resolve_first(&self.bytes[at..], prev_first));
            }
            at += encoded_len(&self.bytes[at..], m);
        }
        let first = if len == 0 {
            0
        } else {
            resolve_first(&self.bytes[at..], prev_first)
        };
        PackedRun {
            bytes: &self.bytes[at..],
            len,
            first,
        }
    }

    /// Appends every logical value, in order, to `out`.
    pub fn decode_all(&self, offsets: &[u32], out: &mut Vec<Id>) {
        let num_keys = offsets.len().saturating_sub(1);
        let mut at = 0usize;
        let mut prev_first: Option<Id> = None;
        for pos in 0..num_keys {
            if pos % SAMPLE == 0 {
                prev_first = None;
            }
            let m = (offsets[pos + 1] - offsets[pos]) as usize;
            if m > 0 {
                let first = resolve_first(&self.bytes[at..], prev_first);
                prev_first = Some(first);
                let run = PackedRun {
                    bytes: &self.bytes[at..],
                    len: m,
                    first,
                };
                run.decode_into(out);
            }
            at += encoded_len(&self.bytes[at..], m);
        }
    }
}

/// One key's packed value run: a borrowed encoding plus its logical
/// length and resolved first value (the header varint may be a delta
/// from the previous run — the positional walk resolves it).
#[derive(Debug, Clone, Copy)]
pub struct PackedRun<'a> {
    bytes: &'a [u8],
    len: usize,
    first: Id,
}

impl<'a> PackedRun<'a> {
    /// Logical number of values.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the run holds no values.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The first (smallest) value, if any.
    pub fn first(&self) -> Option<Id> {
        if self.len == 0 {
            return None;
        }
        Some(self.first)
    }

    /// Membership probe: skip-table gallop to pick the block, then a
    /// vectorized scan of the decoded block.
    pub fn contains(&self, v: Id) -> bool {
        if self.len == 0 {
            return false;
        }
        let first = self.first;
        let (_, header) = read_varint(self.bytes);
        if v == first {
            return true;
        }
        if v < first || self.len == 1 {
            return false;
        }
        let nblocks = self.len.div_ceil(BLOCK_LEN);
        let block = if nblocks == 1 {
            0
        } else {
            let skips = &self.bytes[header..header + (nblocks - 1) * 8];
            pick_block(skips, nblocks, v)
        };
        let mut buf = [0u32; BLOCK_LEN];
        let m = self.decode_block(block, &mut buf);
        contains(&buf[..m], v)
    }

    /// Decodes block `b` into `out`, returning the number of values
    /// written (`BLOCK_LEN` except possibly for the last block).
    pub fn decode_block(&self, b: usize, out: &mut [Id; BLOCK_LEN]) -> usize {
        let nblocks = self.len.div_ceil(BLOCK_LEN);
        debug_assert!(b < nblocks);
        let first = self.first;
        let (_, header) = read_varint(self.bytes);
        if self.len == 1 {
            out[0] = first;
            return 1;
        }
        let m = if b + 1 < nblocks { BLOCK_LEN } else { self.len - b * BLOCK_LEN };
        let skip_end = header + (nblocks - 1) * 8;
        let (base, tail) = if b == 0 {
            (first, skip_end)
        } else {
            let e = header + (b - 1) * 8;
            let base = u32::from_le_bytes([
                self.bytes[e],
                self.bytes[e + 1],
                self.bytes[e + 2],
                self.bytes[e + 3],
            ]);
            let rel = u32::from_le_bytes([
                self.bytes[e + 4],
                self.bytes[e + 5],
                self.bytes[e + 6],
                self.bytes[e + 7],
            ]) as usize;
            (base, skip_end + rel)
        };
        decode_tail(base, &self.bytes[tail..], m, out);
        m
    }

    /// Appends every value of the run, in order, to `out`.
    pub fn decode_into(&self, out: &mut Vec<Id>) {
        let mut buf = [0u32; BLOCK_LEN];
        for b in 0..self.len.div_ceil(BLOCK_LEN) {
            let m = self.decode_block(b, &mut buf);
            out.extend_from_slice(&buf[..m]);
        }
    }

    /// Streaming iterator over the run's values.
    pub fn iter(&self) -> PackedRunIter<'a> {
        PackedRunIter {
            run: *self,
            buf: [0; BLOCK_LEN],
            block: 0,
            filled: 0,
            idx: 0,
            remaining: self.len,
        }
    }
}

/// Block-buffered iterator over a [`PackedRun`].
#[derive(Debug, Clone)]
pub struct PackedRunIter<'a> {
    run: PackedRun<'a>,
    buf: [u32; BLOCK_LEN],
    block: usize,
    filled: usize,
    idx: usize,
    remaining: usize,
}

impl Iterator for PackedRunIter<'_> {
    type Item = Id;

    #[inline]
    fn next(&mut self) -> Option<Id> {
        if self.idx == self.filled {
            if self.remaining == 0 {
                return None;
            }
            self.filled = self.run.decode_block(self.block, &mut self.buf);
            self.block += 1;
            self.idx = 0;
        }
        let v = self.buf[self.idx];
        self.idx += 1;
        self.remaining -= 1;
        Some(v)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for PackedRunIter<'_> {}

/// Clamped galloping search over the skip table: returns the block
/// whose value range may contain `v`, given `v >= first(block 0)`.
///
/// The gallop brackets by doubling but every candidate index is clamped
/// to the last block, so the probe can never overshoot the run boundary
/// (mirror of the clamp contract in `parj-join`'s `gallop_forward`).
fn pick_block(skips: &[u8], nblocks: usize, v: Id) -> usize {
    debug_assert_eq!(skips.len(), (nblocks - 1) * 8);
    let first_of = |b: usize| -> Id {
        // Block 0's first is not in the table; callers guarantee b >= 1.
        let e = (b - 1) * 8;
        u32::from_le_bytes([skips[e], skips[e + 1], skips[e + 2], skips[e + 3]])
    };
    // Sequential start: most probes land in the first few blocks.
    let mut lo = 0usize; // invariant: first_of(lo) <= v (block 0 by contract)
    let last = nblocks - 1;
    for _ in 0..GALLOP_AFTER {
        if lo == last || first_of(lo + 1) > v {
            return lo;
        }
        lo += 1;
    }
    // Gallop: double the jump, clamped to the last block.
    let mut jump = 1usize;
    let mut hi = lo;
    loop {
        let next = hi.saturating_add(jump).min(last);
        if next == hi {
            return hi;
        }
        if first_of(next) > v {
            // Bracketed: binary search (lo, next) for the last block
            // with first <= v; invariant first_of(lo) <= v < first_of(next).
            let (mut a, mut b) = (hi, next);
            while b - a > 1 {
                let mid = a + (b - a) / 2;
                if first_of(mid) <= v {
                    a = mid;
                } else {
                    b = mid;
                }
            }
            return a;
        }
        hi = next;
        jump <<= 1;
    }
}

/// Byte length of the run encoding that starts at `bytes[0]`, for a run
/// of logical length `m`.
fn encoded_len(bytes: &[u8], m: usize) -> usize {
    if m == 0 {
        return 0;
    }
    let (_, header) = read_varint(bytes);
    if m == 1 {
        return header;
    }
    let nblocks = m.div_ceil(BLOCK_LEN);
    let skip_end = header + (nblocks - 1) * 8;
    // Offset of the last block's tail, then the tail's own size.
    let last_tail = if nblocks == 1 {
        skip_end
    } else {
        let e = header + (nblocks - 2) * 8 + 4;
        let rel = u32::from_le_bytes([bytes[e], bytes[e + 1], bytes[e + 2], bytes[e + 3]]) as usize;
        skip_end + rel
    };
    let m_last = m - (nblocks - 1) * BLOCK_LEN;
    let w = bytes[last_tail] as usize;
    last_tail + 1 + ((m_last - 1) * w).div_ceil(8)
}

/// Zigzag-folds a wrapping u32 difference so small jumps in either
/// direction get small codes; exact for every `(first, prev)` pair
/// because the decode side adds the difference back with wrapping
/// arithmetic.
#[inline]
fn zigzag(d: u32) -> u32 {
    let d = d as i32;
    ((d << 1) ^ (d >> 31)) as u32
}

#[inline]
fn unzigzag(z: u32) -> u32 {
    (((z >> 1) as i32) ^ -((z & 1) as i32)) as u32
}

/// Reads the run header at `bytes[0]` and resolves the run's absolute
/// first value: raw when the bucket walk has not yet seen a nonempty
/// run (absolute header), previous-first plus the zigzag delta
/// otherwise.
#[inline]
fn resolve_first(bytes: &[u8], prev_first: Option<Id>) -> Id {
    let (raw, _) = read_varint(bytes);
    match prev_first {
        None => raw,
        Some(p) => p.wrapping_add(unzigzag(raw)),
    }
}

fn encode_run(run: &[Id], prev_first: Option<Id>, out: &mut Vec<u8>) {
    let m = run.len();
    if m == 0 {
        return;
    }
    debug_assert!(run.windows(2).all(|w| w[0] < w[1]), "run not strictly increasing");
    match prev_first {
        None => write_varint(run[0], out),
        Some(p) => write_varint(zigzag(run[0].wrapping_sub(p)), out),
    }
    if m == 1 {
        return;
    }
    let nblocks = m.div_ceil(BLOCK_LEN);
    let skip_at = out.len();
    out.resize(skip_at + (nblocks - 1) * 8, 0);
    let skip_end = out.len();
    for b in 0..nblocks {
        let block = &run[b * BLOCK_LEN..((b + 1) * BLOCK_LEN).min(m)];
        if b > 0 {
            let e = skip_at + (b - 1) * 8;
            let rel = (out.len() - skip_end) as u32;
            out[e..e + 4].copy_from_slice(&block[0].to_le_bytes());
            out[e + 4..e + 8].copy_from_slice(&rel.to_le_bytes());
        }
        encode_tail(block, out);
    }
}

/// Encodes one block's tail: width byte plus bitpacked `gap − 1`
/// deltas (the block's first value lives in the run header or the skip
/// table).
fn encode_tail(block: &[Id], out: &mut Vec<u8>) {
    let mut maxd = 0u32;
    for w in block.windows(2) {
        maxd = maxd.max(w[1] - w[0] - 1);
    }
    let width = 32 - maxd.leading_zeros() as usize;
    out.push(width as u8);
    if width == 0 {
        return;
    }
    let mut acc = 0u64;
    let mut bits = 0usize;
    for w in block.windows(2) {
        let d = (w[1] - w[0] - 1) as u64;
        acc |= d << bits;
        bits += width;
        while bits >= 8 {
            out.push(acc as u8);
            acc >>= 8;
            bits -= 8;
        }
    }
    if bits > 0 {
        out.push(acc as u8);
    }
}

/// Decodes one block's tail into `out[..m]` given its base value.
fn decode_tail(base: Id, tail: &[u8], m: usize, out: &mut [Id; BLOCK_LEN]) {
    let width = tail[0] as usize;
    let mut deltas = [0u32; BLOCK_LEN];
    if width > 0 {
        let mask = if width == 32 { u64::MAX } else { (1u64 << width) - 1 };
        let mut acc = 0u64;
        let mut bits = 0usize;
        let mut src = 1usize;
        for d in deltas.iter_mut().take(m - 1) {
            while bits < width {
                acc |= (tail[src] as u64) << bits;
                src += 1;
                bits += 8;
            }
            *d = (acc & mask) as u32;
            acc >>= width;
            bits -= width;
        }
    }
    reconstruct(base, &deltas[..m - 1], &mut out[..m]);
}

/// Rebuilds block values from the base and the `gap − 1` deltas:
/// `out[0] = base`, `out[i+1] = out[i] + deltas[i] + 1`. Dispatches to
/// the SIMD prefix-sum kernel when available.
fn reconstruct(base: Id, deltas: &[u32], out: &mut [Id]) {
    #[cfg(target_arch = "x86_64")]
    if simd_enabled() && is_x86_feature_detected!("sse2") {
        // SAFETY: sse2 support was verified by the runtime feature
        // detection on the line above.
        unsafe { reconstruct_sse2(base, deltas, out) };
        return;
    }
    #[cfg(target_arch = "aarch64")]
    if simd_enabled() && std::arch::is_aarch64_feature_detected!("neon") {
        // SAFETY: neon support was verified by the runtime feature
        // detection on the line above.
        unsafe { reconstruct_neon(base, deltas, out) };
        return;
    }
    reconstruct_scalar(base, deltas, out);
}

fn reconstruct_scalar(base: Id, deltas: &[u32], out: &mut [Id]) {
    out[0] = base;
    let mut prev = base;
    for (o, &d) in out[1..].iter_mut().zip(deltas) {
        prev = prev.wrapping_add(d).wrapping_add(1);
        *o = prev;
    }
}

/// Sorted-membership scan over a decoded block. Dispatches to the SIMD
/// equality scan when available.
fn contains(hay: &[Id], v: Id) -> bool {
    #[cfg(target_arch = "x86_64")]
    if simd_enabled() && is_x86_feature_detected!("sse2") {
        // SAFETY: sse2 support was verified by the runtime feature
        // detection on the line above.
        return unsafe { contains_sse2(hay, v) };
    }
    #[cfg(target_arch = "aarch64")]
    if simd_enabled() && std::arch::is_aarch64_feature_detected!("neon") {
        // SAFETY: neon support was verified by the runtime feature
        // detection on the line above.
        return unsafe { contains_neon(hay, v) };
    }
    contains_scalar(hay, v)
}

fn contains_scalar(hay: &[Id], v: Id) -> bool {
    hay.binary_search(&v).is_ok()
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn reconstruct_sse2(base: Id, deltas: &[u32], out: &mut [Id]) {
    use std::arch::x86_64::*;
    out[0] = base;
    let mut carry = base;
    let chunks = deltas.len() / 4;
    for c in 0..chunks {
        let i = c * 4;
        // gaps = deltas + 1, then an in-register inclusive prefix sum
        // (Hillis–Steele: shift-by-one-lane add, shift-by-two-lanes add).
        let d = _mm_loadu_si128(deltas.as_ptr().add(i).cast());
        let mut x = _mm_add_epi32(d, _mm_set1_epi32(1));
        x = _mm_add_epi32(x, _mm_slli_si128(x, 4));
        x = _mm_add_epi32(x, _mm_slli_si128(x, 8));
        x = _mm_add_epi32(x, _mm_set1_epi32(carry as i32));
        _mm_storeu_si128(out.as_mut_ptr().add(i + 1).cast(), x);
        carry = _mm_cvtsi128_si32(_mm_shuffle_epi32(x, 0b11_11_11_11)) as u32;
    }
    for i in chunks * 4..deltas.len() {
        carry = carry.wrapping_add(deltas[i]).wrapping_add(1);
        out[i + 1] = carry;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn contains_sse2(hay: &[Id], v: Id) -> bool {
    use std::arch::x86_64::*;
    let needle = _mm_set1_epi32(v as i32);
    let chunks = hay.len() / 4;
    for c in 0..chunks {
        let h = _mm_loadu_si128(hay.as_ptr().add(c * 4).cast());
        if _mm_movemask_epi8(_mm_cmpeq_epi32(h, needle)) != 0 {
            return true;
        }
    }
    hay[chunks * 4..].contains(&v)
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn reconstruct_neon(base: Id, deltas: &[u32], out: &mut [Id]) {
    use std::arch::aarch64::*;
    out[0] = base;
    let mut carry = base;
    let chunks = deltas.len() / 4;
    for c in 0..chunks {
        let i = c * 4;
        let d = vld1q_u32(deltas.as_ptr().add(i));
        let mut x = vaddq_u32(d, vdupq_n_u32(1));
        // Inclusive prefix sum via lane shifts (vextq with a zero vector
        // shifts values toward higher lanes).
        let z = vdupq_n_u32(0);
        x = vaddq_u32(x, vextq_u32(z, x, 3));
        x = vaddq_u32(x, vextq_u32(z, x, 2));
        x = vaddq_u32(x, vdupq_n_u32(carry));
        vst1q_u32(out.as_mut_ptr().add(i + 1), x);
        carry = vgetq_lane_u32(x, 3);
    }
    for i in chunks * 4..deltas.len() {
        carry = carry.wrapping_add(deltas[i]).wrapping_add(1);
        out[i + 1] = carry;
    }
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn contains_neon(hay: &[Id], v: Id) -> bool {
    use std::arch::aarch64::*;
    let needle = vdupq_n_u32(v);
    let chunks = hay.len() / 4;
    for c in 0..chunks {
        let h = vld1q_u32(hay.as_ptr().add(c * 4));
        if vmaxvq_u32(vceqq_u32(h, needle)) != 0 {
            return true;
        }
    }
    hay[chunks * 4..].contains(&v)
}

/// True when the vectorized kernels may run: not under Miri, and not
/// force-disabled via the `PARJ_NO_SIMD` environment variable (the CI
/// scalar-fallback job sets it so the scalar paths stay covered).
fn simd_enabled() -> bool {
    use parj_sync::atomic::{AtomicU32, Ordering};
    if cfg!(miri) {
        return false;
    }
    static STATE: AtomicU32 = AtomicU32::new(0);
    // ordering: Relaxed — STATE is a memoized pure function of the
    // process environment (0=unknown, 1=on, 2=off); racing initializers
    // compute and store the same value, and no other memory is
    // published through it.
    match STATE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let disabled =
                std::env::var_os("PARJ_NO_SIMD").is_some_and(|v| !v.is_empty() && v != "0");
            // ordering: Relaxed — same-value memoization, see above.
            STATE.store(if disabled { 2 } else { 1 }, Ordering::Relaxed);
            !disabled
        }
    }
}

/// True when probes and decodes will use the vectorized kernels (used
/// by benches to label their output).
pub fn simd_active() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        return simd_enabled() && is_x86_feature_detected!("sse2");
    }
    #[cfg(target_arch = "aarch64")]
    {
        return simd_enabled() && std::arch::is_aarch64_feature_detected!("neon");
    }
    #[allow(unreachable_code)]
    false
}

fn write_varint(mut v: u32, out: &mut Vec<u8>) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Returns the decoded value and the number of bytes consumed.
fn read_varint(bytes: &[u8]) -> (u32, usize) {
    let mut v = 0u32;
    let mut shift = 0;
    let mut at = 0usize;
    loop {
        let b = bytes[at];
        at += 1;
        v |= ((b & 0x7f) as u32) << shift;
        if b < 0x80 {
            return (v, at);
        }
        shift += 7;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn offsets_for(runs: &[Vec<Id>]) -> Vec<u32> {
        let mut offsets = vec![0u32];
        let mut total = 0u32;
        for r in runs {
            total += r.len() as u32;
            offsets.push(total);
        }
        offsets
    }

    fn pack_runs(runs: &[Vec<Id>]) -> (PackedValues, Vec<u32>, Vec<Id>) {
        let offsets = offsets_for(runs);
        let values: Vec<Id> = runs.iter().flatten().copied().collect();
        (PackedValues::pack(&offsets, &values), offsets, values)
    }

    /// Strictly increasing run of the given length starting near
    /// `start`, with gaps drawn from `gaps`.
    fn run_from(start: Id, gaps: &[u32]) -> Vec<Id> {
        let mut v = start;
        let mut out = vec![v];
        for &g in gaps {
            v = v.checked_add(g + 1).expect("run fits in u32");
            out.push(v);
        }
        out
    }

    #[test]
    fn roundtrips_fixed_shapes() {
        // Lengths crossing every block boundary the format distinguishes.
        for len in [1usize, 2, 3, 127, 128, 129, 255, 256, 257, 1000] {
            for gap in [0u32, 1, 7, 1000] {
                let run = run_from(5, &vec![gap; len - 1]);
                let (packed, offsets, values) = pack_runs(std::slice::from_ref(&run));
                let mut out = Vec::new();
                packed.decode_all(&offsets, &mut out);
                assert_eq!(out, values, "len {len} gap {gap}");
                let pr = packed.run(0, &offsets);
                assert_eq!(pr.len(), len);
                assert_eq!(pr.iter().collect::<Vec<_>>(), run);
                for &v in &run {
                    assert!(pr.contains(v), "len {len} gap {gap} missing {v}");
                }
                assert!(!pr.contains(run[0].wrapping_sub(1)));
                assert!(!pr.contains(run[len - 1] + 1));
            }
        }
    }

    #[test]
    fn multi_run_access_with_sampling() {
        // More runs than one sample stride, with mixed lengths, so
        // `run()` exercises the parse-skip path.
        let runs: Vec<Vec<Id>> = (0..37u32)
            .map(|i| run_from(i * 1000, &vec![i % 5; (i as usize % 7) + (i as usize % 3) * 130]))
            .collect();
        let (packed, offsets, values) = pack_runs(&runs);
        assert_eq!(packed.num_values(), values.len());
        for (i, r) in runs.iter().enumerate() {
            let pr = packed.run(i, &offsets);
            assert_eq!(&pr.iter().collect::<Vec<_>>(), r, "run {i}");
            assert_eq!(pr.first(), r.first().copied());
        }
        let mut out = Vec::new();
        packed.decode_all(&offsets, &mut out);
        assert_eq!(out, values);
    }

    #[test]
    fn pick_block_matches_linear_oracle() {
        // The clamped gallop over the skip table must agree with a
        // plain linear scan of block firsts for every probe value —
        // including probes past the last block (clamp, no overshoot).
        for nblocks in [2usize, 3, 4, 5, 9, 17, 40] {
            let len = (nblocks - 1) * BLOCK_LEN + 1;
            let run = run_from(0, &vec![2; len - 1]);
            let firsts: Vec<Id> = (0..nblocks).map(|b| run[b * BLOCK_LEN]).collect();
            let mut skips = Vec::new();
            for &f in &firsts[1..] {
                skips.extend_from_slice(&f.to_le_bytes());
                skips.extend_from_slice(&0u32.to_le_bytes()); // offsets unused here
            }
            let max = *run.last().unwrap();
            for v in (firsts[0]..max.saturating_add(50)).step_by(7) {
                let want = firsts.iter().rposition(|&f| f <= v).unwrap();
                let got = pick_block(&skips, nblocks, v);
                assert_eq!(got, want, "nblocks {nblocks} probe {v}");
            }
        }
    }

    #[test]
    fn contains_at_block_boundaries() {
        // Values sitting exactly at block edges, probes between blocks,
        // and probes past the end must all answer via the clamped
        // gallop without overshooting.
        let run = run_from(10, &vec![9; 1000]);
        let (packed, offsets, _) = pack_runs(std::slice::from_ref(&run));
        let pr = packed.run(0, &offsets);
        for b in [0usize, 1, 2, 7] {
            let edge = run[b * BLOCK_LEN];
            assert!(pr.contains(edge));
            assert!(!pr.contains(edge + 1), "gap values absent");
            if b > 0 {
                assert!(pr.contains(run[b * BLOCK_LEN - 1]), "last of prev block");
            }
        }
        assert!(pr.contains(*run.last().unwrap()));
        assert!(!pr.contains(run.last().unwrap() + 10));
        assert!(!pr.contains(0));
    }

    #[test]
    fn scalar_and_simd_kernels_agree() {
        // The dispatching wrappers must be bit-identical to the scalar
        // kernels on every length/alignment the block format produces.
        let mut deltas = [0u32; BLOCK_LEN];
        for (i, d) in deltas.iter_mut().enumerate() {
            *d = (i as u32).wrapping_mul(2654435761) % 1000;
        }
        for n in [0usize, 1, 3, 4, 5, 8, 17, 127] {
            let mut a = vec![0u32; n + 1];
            let mut b = vec![0u32; n + 1];
            reconstruct_scalar(77, &deltas[..n], &mut a);
            reconstruct(77, &deltas[..n], &mut b);
            assert_eq!(a, b, "reconstruct length {n}");
            for probe in a.iter().copied().chain([0, 76, u32::MAX]) {
                assert_eq!(
                    contains_scalar(&a, probe),
                    contains(&a, probe),
                    "contains length {n} probe {probe}"
                );
            }
        }
    }

    #[test]
    fn zigzag_wrapping_roundtrip() {
        // The header delta is a wrapping u32 difference; zigzag must be
        // exact in both directions for every magnitude, including the
        // full-range jumps 0 ↔ u32::MAX.
        for (first, prev) in [
            (0u32, 0u32),
            (5, 3),
            (3, 5),
            (u32::MAX, 0),
            (0, u32::MAX),
            (2_147_483_648, 17),
            (17, 2_147_483_648),
        ] {
            let d = first.wrapping_sub(prev);
            assert_eq!(prev.wrapping_add(unzigzag(zigzag(d))), first, "{first} vs {prev}");
        }
    }

    #[test]
    fn wrapping_first_deltas_roundtrip() {
        // Run firsts that jump across the whole u32 range in both
        // directions, crossing sample-bucket boundaries, so both the
        // absolute and the delta header paths are exercised at the
        // extremes.
        let runs: Vec<Vec<Id>> = (0..20u32)
            .map(|i| {
                let start = if i % 2 == 0 { u32::MAX - 100 - i } else { i * 3 };
                run_from(start, &[(i % 4) * 7])
            })
            .collect();
        let (packed, offsets, values) = pack_runs(&runs);
        let mut out = Vec::new();
        packed.decode_all(&offsets, &mut out);
        assert_eq!(out, values);
        for (i, r) in runs.iter().enumerate() {
            let pr = packed.run(i, &offsets);
            assert_eq!(pr.first(), r.first().copied(), "run {i}");
            assert_eq!(&pr.iter().collect::<Vec<_>>(), r, "run {i}");
            for &v in r {
                assert!(pr.contains(v));
            }
        }
    }

    #[test]
    fn varint_roundtrip() {
        for v in [0u32, 1, 127, 128, 300, 16_383, 16_384, u32::MAX] {
            let mut out = Vec::new();
            write_varint(v, &mut out);
            assert_eq!(read_varint(&out), (v, out.len()));
        }
    }

    #[test]
    fn empty_area_packs_empty() {
        let (packed, offsets, _) = pack_runs(&[]);
        assert_eq!(packed.num_values(), 0);
        let mut out = Vec::new();
        packed.decode_all(&offsets, &mut out);
        assert!(out.is_empty());
    }

    /// Random run set as `(start, gaps)` pairs; gap 0 exercises the
    /// width-0 consecutive-id fast path.
    fn arb_runs() -> impl Strategy<Value = Vec<Vec<Id>>> {
        proptest::collection::vec(
            (
                0u32..1_000_000,
                proptest::collection::vec(0u32..64, 0..300),
            ),
            0..12,
        )
        .prop_map(|rs| rs.into_iter().map(|(s, gaps)| run_from(s, &gaps)).collect())
    }

    proptest! {
        /// Encode → decode identity over random run shapes, via every
        /// accessor (bulk decode, per-run iterator, membership probe).
        #[test]
        fn roundtrip_random_runs(runs in arb_runs()) {
            let (packed, offsets, values) = pack_runs(&runs);
            let mut out = Vec::new();
            packed.decode_all(&offsets, &mut out);
            prop_assert_eq!(&out, &values);
            for (i, r) in runs.iter().enumerate() {
                let pr = packed.run(i, &offsets);
                prop_assert_eq!(pr.len(), r.len());
                prop_assert_eq!(&pr.iter().collect::<Vec<_>>(), r);
                // Every present value answers true; neighbours of the
                // run ends answer false unless genuinely present.
                for &v in r {
                    prop_assert!(pr.contains(v));
                }
                if let (Some(&lo), Some(&hi)) = (r.first(), r.last()) {
                    prop_assert!(!pr.contains(lo.wrapping_sub(1)) || lo == 0);
                    prop_assert!(!pr.contains(hi.wrapping_add(1)) || hi == u32::MAX);
                }
            }
        }

        /// Block-boundary run lengths: exact multiples and ±1, asserted
        /// through both the scalar and the dispatching kernels.
        #[test]
        fn roundtrip_block_boundary_lengths(
            start in 0u32..100_000,
            gap in 0u32..32,
            blocks in 1usize..4,
            wobble in -1isize..=1,
        ) {
            let len = (blocks * BLOCK_LEN).saturating_add_signed(wobble).max(1);
            let run = run_from(start, &vec![gap; len - 1]);
            let (packed, offsets, _) = pack_runs(std::slice::from_ref(&run));
            let pr = packed.run(0, &offsets);
            prop_assert_eq!(pr.iter().collect::<Vec<_>>(), run);
        }
    }
}
