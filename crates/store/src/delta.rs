//! LSM-style per-predicate delta overlay for incremental mutations.
//!
//! The base [`TripleStore`] stays immutable — query workers share it
//! read-only with no synchronization (the paper's execution model).
//! Mutations land in a [`DeltaOverlay`]: per predicate, a small sorted
//! **add** run (pure insertions, disjoint from the base) and a small
//! sorted **del** run (tombstones, always a subset of the base), each
//! stored as a regular two-replica [`Partition`] so both probe orders
//! stay available. The visible relation for a predicate is
//!
//! ```text
//! visible(p) = (base(p) \ del(p)) ∪ add(p)
//! ```
//!
//! and because all three runs are CSR-sorted, any merged iteration
//! (probe groups, key scans, compaction) is a two-pointer merge of
//! sorted runs — the merged order is exactly the order a from-scratch
//! rebuild would produce, which is what keeps query results
//! byte-identical between a dirty overlay and a compacted store.
//!
//! When a predicate's resident add+del runs exceed a threshold, the
//! engine triggers **compaction**: the merged view is materialized into
//! a fresh [`Partition`] (two sorted runs merged — cheap, O(partition))
//! that replaces the base partition *for this overlay only* and the
//! runs are cleared. Compaction never touches other predicates and
//! never rebuilds the dictionary, so a mutation batch stays
//! O(batch + delta + touched partitions), never O(dataset).
//!
//! New terms introduced by mutations live in a [`DictDelta`] held here,
//! so one overlay value carries everything that differs from the base.

use parj_dict::{DictDelta, EncodedTriple, Id};
use parj_sync::Arc;

use crate::partition::Partition;
use crate::replica::Replica;
use crate::store::{SortOrder, TripleStore};

/// Per-predicate mutation state: optional compacted replacement of the
/// base partition, plus the resident add/del runs.
///
/// Invariants (maintained by [`DeltaOverlay::apply_pred`]):
/// * `add` pairs are **not** in the effective base partition;
/// * `del` pairs **are** in the effective base partition;
/// * consequently `add` and `del` are disjoint.
#[derive(Debug, Clone, Default)]
pub struct PredDelta {
    compacted: Option<Arc<Partition>>,
    add: Option<Arc<Partition>>,
    del: Option<Arc<Partition>>,
}

impl PredDelta {
    /// The compacted replacement partition, if this predicate has been
    /// compacted since the last full rebuild.
    #[inline]
    pub fn compacted(&self) -> Option<&Partition> {
        self.compacted.as_deref()
    }

    /// Resident insertions (disjoint from the effective base).
    #[inline]
    pub fn add(&self) -> Option<&Partition> {
        self.add.as_deref()
    }

    /// Resident tombstones (subset of the effective base).
    #[inline]
    pub fn del(&self) -> Option<&Partition> {
        self.del.as_deref()
    }

    /// True if this predicate carries no overlay state at all.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.compacted.is_none() && self.add.is_none() && self.del.is_none()
    }

    /// Resident (uncompacted) pair count: add + del triples that every
    /// probe on this predicate must merge.
    pub fn resident_pairs(&self) -> usize {
        self.add.as_ref().map_or(0, |p| p.num_triples())
            + self.del.as_ref().map_or(0, |p| p.num_triples())
    }

    /// Overlay bytes for this predicate (runs + compacted partition).
    pub fn memory_bytes(&self) -> usize {
        self.compacted.as_ref().map_or(0, |p| p.memory_bytes())
            + self.add.as_ref().map_or(0, |p| p.memory_bytes())
            + self.del.as_ref().map_or(0, |p| p.memory_bytes())
    }
}

/// Outcome of applying one predicate's slice of a mutation batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredApply {
    /// Insertions that changed visibility (were not already visible).
    pub inserted: usize,
    /// Deletions that changed visibility (were visible before).
    pub deleted: usize,
}

/// Everything that differs from the immutable base store: new
/// dictionary terms plus per-predicate add/del runs and compacted
/// partitions.
///
/// Cloning is cheap (partitions are behind [`Arc`]), which is how the
/// engine hands a consistent overlay to pooled query workers while a
/// later mutation builds the next version copy-on-write.
#[derive(Debug, Clone)]
pub struct DeltaOverlay {
    dict: DictDelta,
    /// Indexed by predicate id; may extend past the base's predicate
    /// range when mutations introduce new predicates.
    preds: Vec<PredDelta>,
    /// Visible triples minus the base store's triple count.
    net_triples: i64,
    /// Compactions performed since this overlay was created.
    compactions: u64,
}

impl DeltaOverlay {
    /// Creates an empty overlay anchored at `base`.
    pub fn new(base: &TripleStore) -> Self {
        DeltaOverlay {
            dict: DictDelta::new(base.dict()),
            preds: Vec::new(),
            net_triples: 0,
            compactions: 0,
        }
    }

    /// The dictionary extension.
    #[inline]
    pub fn dict(&self) -> &DictDelta {
        &self.dict
    }

    /// Mutable access to the dictionary extension (the engine encodes
    /// batch terms through this before applying pairs).
    #[inline]
    pub fn dict_mut(&mut self) -> &mut DictDelta {
        &mut self.dict
    }

    /// True if the overlay carries no state at all — no new terms, no
    /// runs, no compacted partitions.
    pub fn is_clean(&self) -> bool {
        self.dict.is_empty() && self.preds.iter().all(PredDelta::is_empty)
    }

    /// True if any predicate has resident (uncompacted) add/del runs.
    pub fn has_resident_runs(&self) -> bool {
        self.preds.iter().any(|p| p.resident_pairs() > 0)
    }

    /// Overlay state for one predicate, if any.
    #[inline]
    pub fn pred(&self, predicate: Id) -> Option<&PredDelta> {
        self.preds.get(predicate as usize)
    }

    /// Predicate id space length covered by base + overlay.
    pub fn num_predicates(&self, base: &TripleStore) -> usize {
        base.num_predicates()
            .max(self.preds.len())
            .max(self.dict.num_predicates())
    }

    /// Visible triples: base count adjusted by applied mutations.
    pub fn visible_triples(&self, base: &TripleStore) -> usize {
        let n = base.num_triples() as i64 + self.net_triples;
        debug_assert!(n >= 0, "net delta cannot delete more than exists");
        n.max(0) as usize
    }

    /// Total compactions performed through this overlay.
    #[inline]
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Resident (uncompacted) pairs across all predicates — the merge
    /// work probes pay until the next compaction.
    pub fn resident_pairs(&self) -> usize {
        self.preds.iter().map(PredDelta::resident_pairs).sum()
    }

    /// Overlay heap bytes: runs, compacted partitions, and the
    /// dictionary extension.
    pub fn memory_bytes(&self) -> usize {
        self.preds.iter().map(PredDelta::memory_bytes).sum::<usize>()
            + self.dict.memory_bytes()
    }

    /// The effective base partition for `predicate`: the compacted
    /// replacement if one exists, else the base store's partition.
    pub fn effective_base<'a>(
        &'a self,
        base: &'a TripleStore,
        predicate: Id,
    ) -> Option<&'a Partition> {
        match self.pred(predicate).and_then(PredDelta::compacted) {
            Some(part) => Some(part),
            None => base.partition(predicate),
        }
    }

    /// Applies one predicate's slice of a mutation batch.
    ///
    /// `inserts` and `deletes` must be sorted, deduplicated `(s, o)`
    /// pairs with last-wins conflict resolution already applied (so the
    /// two slices are disjoint). Returns how many operations actually
    /// changed visibility; already-present inserts and already-absent
    /// deletes are no-ops, preserving set semantics.
    ///
    /// Cost: O((|add| + |del| + batch) · log) for this predicate only.
    pub fn apply_pred(
        &mut self,
        base: &TripleStore,
        predicate: Id,
        inserts: &[(Id, Id)],
        deletes: &[(Id, Id)],
    ) -> PredApply {
        debug_assert!(inserts.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(deletes.windows(2).all(|w| w[0] < w[1]));

        let idx = predicate as usize;
        if self.preds.len() <= idx {
            self.preds.resize_with(idx + 1, PredDelta::default);
        }
        let in_base = |s: Id, o: Id| -> bool {
            match self.preds[idx].compacted() {
                Some(part) => part.contains(s, o),
                None => base.partition(predicate).is_some_and(|p| p.contains(s, o)),
            }
        };

        let entry = &self.preds[idx];
        let add_pairs: Vec<(Id, Id)> =
            entry.add().map(|p| p.iter_so().collect()).unwrap_or_default();
        let del_pairs: Vec<(Id, Id)> =
            entry.del().map(|p| p.iter_so().collect()).unwrap_or_default();
        let has = |v: &[(Id, Id)], pair: (Id, Id)| v.binary_search(&pair).is_ok();

        // Partition the batch into run edits. `*_grow` and `*_shrink`
        // come out sorted because the input slices are sorted.
        let mut add_grow = Vec::new();
        let mut add_shrink = Vec::new();
        let mut del_grow = Vec::new();
        let mut del_shrink = Vec::new();
        let mut out = PredApply::default();
        for &pair in inserts {
            if in_base(pair.0, pair.1) {
                if has(&del_pairs, pair) {
                    del_shrink.push(pair); // un-tombstone
                    out.inserted += 1;
                }
            } else if !has(&add_pairs, pair) {
                add_grow.push(pair);
                out.inserted += 1;
            }
        }
        for &pair in deletes {
            if in_base(pair.0, pair.1) {
                if !has(&del_pairs, pair) {
                    del_grow.push(pair);
                    out.deleted += 1;
                }
            } else if has(&add_pairs, pair) {
                add_shrink.push(pair); // retract a resident insert
                out.deleted += 1;
            }
        }

        let rebuild = |old: Vec<(Id, Id)>,
                       shrink: &[(Id, Id)],
                       grow: &[(Id, Id)]|
         -> Option<Arc<Partition>> {
            if shrink.is_empty() && grow.is_empty() {
                return (!old.is_empty())
                    .then(|| Arc::new(Partition::build(predicate, &old)));
            }
            let mut pairs: Vec<(Id, Id)> = old
                .into_iter()
                .filter(|p| shrink.binary_search(p).is_err())
                .collect();
            pairs.extend_from_slice(grow);
            (!pairs.is_empty()).then(|| Arc::new(Partition::build(predicate, &pairs)))
        };
        // Keep the existing Arc when a run is untouched (cheap clone on
        // the copy-on-write path); rebuild only edited runs.
        if !(add_grow.is_empty() && add_shrink.is_empty()) {
            self.preds[idx].add = rebuild(add_pairs, &add_shrink, &add_grow);
        }
        if !(del_grow.is_empty() && del_shrink.is_empty()) {
            self.preds[idx].del = rebuild(del_pairs, &del_shrink, &del_grow);
        }

        self.net_triples += out.inserted as i64 - out.deleted as i64;
        out
    }

    /// True if `predicate`'s resident runs have reached `threshold`
    /// pairs (a threshold of 0 disables compaction).
    pub fn needs_compaction(&self, predicate: Id, threshold: usize) -> bool {
        threshold > 0
            && self
                .pred(predicate)
                .is_some_and(|p| p.resident_pairs() >= threshold)
    }

    /// Compacts one predicate: merges the visible view into a fresh
    /// partition (two sorted runs — a linear merge) that replaces the
    /// effective base, then clears the runs. Other predicates and the
    /// base store are untouched.
    pub fn compact_pred(&mut self, base: &TripleStore, predicate: Id) {
        let idx = predicate as usize;
        if self.pred(predicate).is_none_or(|p| p.resident_pairs() == 0) {
            return;
        }
        let merged = self.merged_so_pairs(base, predicate);
        let mut part = Partition::build(predicate, &merged);
        let options = base.options();
        if options.build_idpos {
            let universe = self.dict.num_resources().max(base.dict().num_resources());
            for order in [SortOrder::SO, SortOrder::OS] {
                part.replica_mut(order)
                    .build_idpos(universe, options.idpos_interval);
            }
        }
        // Replacement partitions inherit the base store's compression
        // policy, so a compressed store stays compressed across
        // compactions.
        if let Some(min) = options.compress_min_values {
            part.compress_values(min);
        }
        self.preds[idx].compacted = Some(Arc::new(part));
        self.preds[idx].add = None;
        self.preds[idx].del = None;
        self.compactions += 1;
    }

    /// The visible `(s, o)` pairs for `predicate` in S-O order — the
    /// exact sequence a from-scratch rebuild would store.
    pub fn merged_so_pairs(&self, base: &TripleStore, predicate: Id) -> Vec<(Id, Id)> {
        let entry = self.pred(predicate);
        let base_part = self.effective_base(base, predicate);
        let add = entry.and_then(PredDelta::add);
        let del = entry.and_then(PredDelta::del);

        let visible = base_part.map_or(0, |p| p.num_triples())
            + add.map_or(0, |p| p.num_triples())
            - del.map_or(0, |p| p.num_triples());
        let mut out = Vec::with_capacity(visible);
        let mut del_it = del
            .map(|p| p.iter_so())
            .into_iter()
            .flatten()
            .peekable();
        let mut add_it = add
            .map(|p| p.iter_so())
            .into_iter()
            .flatten()
            .peekable();
        let base_it = base_part.map(|p| p.iter_so()).into_iter().flatten();
        for pair in base_it {
            if del_it.peek() == Some(&pair) {
                del_it.next();
                continue;
            }
            while let Some(a) = add_it.next_if(|a| *a < pair) {
                out.push(a);
            }
            out.push(pair);
        }
        out.extend(add_it);
        debug_assert!(del_it.peek().is_none(), "tombstones must subset the base");
        out
    }

    /// Iterates every visible triple, predicate-major in `(s, o)`
    /// order — the rebuild/export order. Not a query path.
    pub fn iter_merged_triples<'a>(
        &'a self,
        base: &'a TripleStore,
    ) -> impl Iterator<Item = EncodedTriple> + 'a {
        (0..self.num_predicates(base)).flat_map(move |p| {
            let p = p as Id;
            self.merged_so_pairs(base, p)
                .into_iter()
                .map(move |(s, o)| EncodedTriple::new(s, p, o))
        })
    }

    /// Verifies overlay invariants for every predicate: runs sorted
    /// (delegated to partition invariants), `add` disjoint from the
    /// effective base, `del` a subset of it, and the net-triple count
    /// consistent with the runs.
    pub fn check_invariants(&self, base: &TripleStore) -> Result<(), String> {
        let mut net = 0i64;
        for (idx, entry) in self.preds.iter().enumerate() {
            let pred = idx as Id;
            for (name, part) in [
                ("compacted", entry.compacted()),
                ("add", entry.add()),
                ("del", entry.del()),
            ] {
                if let Some(part) = part {
                    part.check_invariants()
                        .map_err(|e| format!("pred {pred} {name} run: {e}"))?;
                }
            }
            let base_has = |s: Id, o: Id| match entry.compacted() {
                Some(part) => part.contains(s, o),
                None => base.partition(pred).is_some_and(|p| p.contains(s, o)),
            };
            if let Some(add) = entry.add() {
                for (s, o) in add.iter_so() {
                    if base_has(s, o) {
                        return Err(format!(
                            "pred {pred}: add pair ({s},{o}) already in base"
                        ));
                    }
                }
                net += add.num_triples() as i64;
            }
            if let Some(del) = entry.del() {
                for (s, o) in del.iter_so() {
                    if !base_has(s, o) {
                        return Err(format!(
                            "pred {pred}: tombstone ({s},{o}) not in base"
                        ));
                    }
                }
                net -= del.num_triples() as i64;
            }
            if let Some(comp) = entry.compacted() {
                let base_n =
                    base.partition(pred).map_or(0, |p| p.num_triples()) as i64;
                net += comp.num_triples() as i64 - base_n;
            }
        }
        if net != self.net_triples {
            return Err(format!(
                "net triple count {} != recomputed {net}",
                self.net_triples
            ));
        }
        Ok(())
    }
}

/// A read view over a base store plus an optional overlay — what the
/// executor, audit, and decode paths consume so that clean and dirty
/// stores share one code path.
#[derive(Debug, Clone, Copy)]
pub struct StoreView<'a> {
    base: &'a TripleStore,
    delta: Option<&'a DeltaOverlay>,
}

impl<'a> StoreView<'a> {
    /// A view of the base store alone.
    pub fn base_only(base: &'a TripleStore) -> Self {
        StoreView { base, delta: None }
    }

    /// A view of the base plus `delta`. A clean overlay is dropped so
    /// the executor keeps its zero-overhead path.
    pub fn with_delta(base: &'a TripleStore, delta: &'a DeltaOverlay) -> Self {
        StoreView {
            base,
            delta: (!delta.is_clean()).then_some(delta),
        }
    }

    /// The base store.
    #[inline]
    pub fn base(&self) -> &'a TripleStore {
        self.base
    }

    /// The overlay, if one is attached.
    #[inline]
    pub fn overlay(&self) -> Option<&'a DeltaOverlay> {
        self.delta
    }

    /// Visible triple count.
    pub fn num_triples(&self) -> usize {
        match self.delta {
            Some(d) => d.visible_triples(self.base),
            None => self.base.num_triples(),
        }
    }

    /// True if the fully-constant triple is visible.
    pub fn contains(&self, t: EncodedTriple) -> bool {
        match self.replica(t.p, SortOrder::SO) {
            Some(view) => view.contains_pair(t.s, t.o),
            None => false,
        }
    }

    /// The probe view for `predicate` in `order`, or `None` if the
    /// predicate is outside both the base and the overlay (which is
    /// only possible for ids no dictionary handed out).
    pub fn replica(&self, predicate: Id, order: SortOrder) -> Option<ReplicaView<'a>> {
        let Some(overlay) = self.delta else {
            return self.base.replica(predicate, order).map(ReplicaView::Clean);
        };
        let entry = overlay.pred(predicate);
        let base_rep = match entry.and_then(PredDelta::compacted) {
            Some(part) => Some(part.replica(order)),
            None => self.base.replica(predicate, order),
        };
        let add = entry.and_then(PredDelta::add).map(|p| p.replica(order));
        let del = entry.and_then(PredDelta::del).map(|p| p.replica(order));
        if add.is_none() && del.is_none() {
            return base_rep.map(ReplicaView::Clean);
        }
        Some(ReplicaView::Dirty {
            base: base_rep,
            add,
            del,
        })
    }
}

/// One predicate-order probe target: either the untouched (or
/// compacted) CSR replica, or the base replica plus resident runs that
/// every probe must merge.
#[derive(Debug, Clone, Copy)]
pub enum ReplicaView<'a> {
    /// No resident runs — probes hit the replica directly, preserving
    /// the zero-overhead hot path (adaptive search, ID-to-Position).
    Clean(&'a Replica),
    /// Resident runs present: visible = (base \ del) ∪ add.
    Dirty {
        /// Effective base replica (compacted replacement or the store's
        /// own); `None` when the predicate only exists in the overlay.
        base: Option<&'a Replica>,
        /// Insertions, disjoint from `base`.
        add: Option<&'a Replica>,
        /// Tombstones, a subset of `base`.
        del: Option<&'a Replica>,
    },
}

impl<'a> ReplicaView<'a> {
    /// True if `(key, value)` is visible. Probes go through
    /// [`crate::Group`], so base replicas (and compacted replacements)
    /// may be block-compressed; add/del runs are always raw.
    pub fn contains_pair(&self, key: Id, value: Id) -> bool {
        match self {
            ReplicaView::Clean(rep) => rep.group_for_key(key).contains(value),
            ReplicaView::Dirty { base, add, del } => {
                let in_del =
                    del.is_some_and(|d| d.group_for_key(key).contains(value));
                if in_del {
                    return false;
                }
                base.is_some_and(|b| b.group_for_key(key).contains(value))
                    || add.is_some_and(|a| a.group_for_key(key).contains(value))
            }
        }
    }

    /// The visible sorted value group for `key`, appended to `out`
    /// (which is cleared first). For a clean raw replica prefer
    /// borrowing [`Replica::values_for_key`] directly.
    pub fn merged_values_into(&self, key: Id, out: &mut Vec<Id>) {
        out.clear();
        match self {
            ReplicaView::Clean(rep) => rep.group_for_key(key).decode_into(out),
            ReplicaView::Dirty { base, add, del } => merge_group_into(
                base.map_or(crate::Group::Raw(&[]), |b| b.group_for_key(key)),
                add.map_or(&[][..], |a| a.values_for_key(key)),
                del.map_or(&[][..], |d| d.values_for_key(key)),
                out,
            ),
        }
    }

    /// The sorted distinct key domain. For dirty views this is the
    /// union of base and add keys — a key whose whole group was
    /// tombstoned still appears (its merged group is empty), which only
    /// pads the scan domain and never changes emitted rows.
    pub fn merged_keys(&self) -> Vec<Id> {
        match self {
            ReplicaView::Clean(rep) => rep.keys().to_vec(),
            ReplicaView::Dirty { base, add, .. } => {
                let b = base.map_or(&[][..], |r| r.keys());
                let a = add.map_or(&[][..], |r| r.keys());
                let mut out = Vec::with_capacity(b.len() + a.len());
                let (mut i, mut j) = (0, 0);
                while i < b.len() && j < a.len() {
                    match b[i].cmp(&a[j]) {
                        std::cmp::Ordering::Less => {
                            out.push(b[i]);
                            i += 1;
                        }
                        std::cmp::Ordering::Greater => {
                            out.push(a[j]);
                            j += 1;
                        }
                        std::cmp::Ordering::Equal => {
                            out.push(b[i]);
                            i += 1;
                            j += 1;
                        }
                    }
                }
                out.extend_from_slice(&b[i..]);
                out.extend_from_slice(&a[j..]);
                out
            }
        }
    }
}

/// Binary search membership in a sorted slice.
#[inline]
pub fn sorted_contains(slice: &[Id], value: Id) -> bool {
    slice.binary_search(&value).is_ok()
}

/// Merges `(base \ del) ∪ add` into `out`, preserving sorted order.
/// `add` must be disjoint from `base` and `del` a subset of `base` —
/// the overlay invariants.
pub fn merge_values_into(base: &[Id], add: &[Id], del: &[Id], out: &mut Vec<Id>) {
    let mut di = 0;
    let mut ai = 0;
    for &v in base {
        if di < del.len() && del[di] == v {
            di += 1;
            continue;
        }
        while ai < add.len() && add[ai] < v {
            out.push(add[ai]);
            ai += 1;
        }
        out.push(v);
    }
    out.extend_from_slice(&add[ai..]);
}

/// [`merge_values_into`] with a [`crate::Group`] base, so the same
/// two-pointer merge runs over raw and block-compressed base groups.
pub fn merge_group_into(
    base: crate::Group<'_>,
    add: &[Id],
    del: &[Id],
    out: &mut Vec<Id>,
) {
    if let Some(slice) = base.as_raw() {
        return merge_values_into(slice, add, del, out);
    }
    let mut di = 0;
    let mut ai = 0;
    for v in base.iter() {
        if di < del.len() && del[di] == v {
            di += 1;
            continue;
        }
        while ai < add.len() && add[ai] < v {
            out.push(add[ai]);
            ai += 1;
        }
        out.push(v);
    }
    out.extend_from_slice(&add[ai..]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreBuilder;
    use parj_dict::Term;

    fn base_store() -> TripleStore {
        let mut b = StoreBuilder::new();
        let rows = [
            ("s1", "p0", "o1"),
            ("s1", "p0", "o2"),
            ("s2", "p0", "o1"),
            ("s1", "p1", "o3"),
        ];
        for (s, p, o) in rows {
            b.add_term_triple(&Term::iri(s), &Term::iri(p), &Term::iri(o));
        }
        b.build()
    }

    fn rid(store: &TripleStore, name: &str) -> Id {
        store.dict().resource_id(&Term::iri(name)).unwrap()
    }

    #[test]
    fn insert_then_delete_roundtrips_to_clean_view() {
        let base = base_store();
        let mut ov = DeltaOverlay::new(&base);
        let (s1, o9) = (rid(&base, "s1"), rid(&base, "o1"));
        // Deleting a base pair then re-inserting it must cancel out.
        let del = ov.apply_pred(&base, 0, &[], &[(s1, o9)]);
        assert_eq!(del, PredApply { inserted: 0, deleted: 1 });
        assert_eq!(ov.visible_triples(&base), 3);
        let ins = ov.apply_pred(&base, 0, &[(s1, o9)], &[]);
        assert_eq!(ins, PredApply { inserted: 1, deleted: 0 });
        assert_eq!(ov.visible_triples(&base), 4);
        assert!(!ov.has_resident_runs());
        assert_eq!(ov.check_invariants(&base), Ok(()));
    }

    #[test]
    fn duplicate_insert_and_missing_delete_are_noops() {
        let base = base_store();
        let mut ov = DeltaOverlay::new(&base);
        let (s1, o1) = (rid(&base, "s1"), rid(&base, "o1"));
        // (s1, o1) already exists under p0; (o1, s1) does not.
        let r = ov.apply_pred(&base, 0, &[(s1, o1)], &[(o1, s1)]);
        assert_eq!(r, PredApply::default());
        assert!(ov.is_clean());
    }

    #[test]
    fn merged_pairs_equal_rebuild_order() {
        let base = base_store();
        let mut ov = DeltaOverlay::new(&base);
        let (s1, s2, o1, o2, o3) = (
            rid(&base, "s1"),
            rid(&base, "s2"),
            rid(&base, "o1"),
            rid(&base, "o2"),
            rid(&base, "o3"),
        );
        let mut ins = vec![(s2, o2), (o3, o1)];
        ins.sort_unstable();
        ov.apply_pred(&base, 0, &ins, &[(s1, o2)]);
        // Rebuild from the merged triples and compare pair-for-pair.
        let merged = ov.merged_so_pairs(&base, 0);
        let mut expect: Vec<(Id, Id)> = base
            .partition(0)
            .unwrap()
            .iter_so()
            .filter(|&p| p != (s1, o2))
            .chain(ins.iter().copied())
            .collect();
        expect.sort_unstable();
        assert_eq!(merged, expect);
        assert_eq!(ov.check_invariants(&base), Ok(()));
    }

    #[test]
    fn compaction_clears_runs_and_preserves_view() {
        let base = base_store();
        let mut ov = DeltaOverlay::new(&base);
        let (s2, o2, o3) = (rid(&base, "s2"), rid(&base, "o2"), rid(&base, "o3"));
        let mut ins = vec![(s2, o2), (s2, o3)];
        ins.sort_unstable();
        ov.apply_pred(&base, 0, &ins, &[]);
        let before = ov.merged_so_pairs(&base, 0);
        assert!(ov.needs_compaction(0, 2));
        ov.compact_pred(&base, 0);
        assert_eq!(ov.compactions(), 1);
        assert!(!ov.has_resident_runs());
        assert_eq!(ov.merged_so_pairs(&base, 0), before);
        // The compacted partition carries ID-to-Position like the base.
        let view = StoreView::with_delta(&base, &ov);
        match view.replica(0, SortOrder::SO).unwrap() {
            ReplicaView::Clean(rep) => assert!(rep.idpos().is_some()),
            ReplicaView::Dirty { .. } => panic!("compacted pred must be clean"),
        }
        assert_eq!(ov.check_invariants(&base), Ok(()));
        // Mutations after compaction run against the compacted base.
        let r = ov.apply_pred(&base, 0, &[], &ins);
        assert_eq!(r.deleted, 2);
        assert_eq!(ov.visible_triples(&base), 4);
        assert_eq!(ov.check_invariants(&base), Ok(()));
    }

    #[test]
    fn new_predicate_lives_only_in_overlay() {
        let base = base_store();
        let mut ov = DeltaOverlay::new(&base);
        let new_pred = base.num_predicates() as Id;
        let r = ov.apply_pred(&base, new_pred, &[(1, 2)], &[]);
        assert_eq!(r.inserted, 1);
        let view = StoreView::with_delta(&base, &ov);
        let rep = view.replica(new_pred, SortOrder::SO).unwrap();
        assert!(rep.contains_pair(1, 2));
        assert_eq!(rep.merged_keys(), vec![1]);
        assert!(view.contains(EncodedTriple::new(1, new_pred, 2)));
        assert_eq!(view.num_triples(), 5);
    }

    #[test]
    fn dirty_view_merges_both_orders() {
        let base = base_store();
        let mut ov = DeltaOverlay::new(&base);
        let (s2, o2) = (rid(&base, "s2"), rid(&base, "o2"));
        ov.apply_pred(&base, 0, &[(s2, o2)], &[]);
        let view = StoreView::with_delta(&base, &ov);
        let so = view.replica(0, SortOrder::SO).unwrap();
        let mut vals = Vec::new();
        so.merged_values_into(s2, &mut vals);
        let o1 = rid(&base, "o1");
        let mut expect = vec![o1, o2];
        expect.sort_unstable();
        assert_eq!(vals, expect);
        // OS order: o2's subjects now include s2.
        let os = view.replica(0, SortOrder::OS).unwrap();
        assert!(os.contains_pair(o2, s2));
    }

    #[test]
    fn overlay_over_compressed_base() {
        // A block-compressed base must behave identically to raw under
        // mutation, merge, and compaction.
        let mut b = StoreBuilder::new();
        for i in 0..2000u32 {
            b.add_term_triple(
                &Term::iri(format!("s{}", i % 4)),
                &Term::iri("p"),
                &Term::iri(format!("o{i}")),
            );
        }
        let raw = b.build();
        let mut zip_opts = raw.options();
        zip_opts.compress_min_values = Some(8);
        let mut b = StoreBuilder::new();
        for i in 0..2000u32 {
            b.add_term_triple(
                &Term::iri(format!("s{}", i % 4)),
                &Term::iri("p"),
                &Term::iri(format!("o{i}")),
            );
        }
        let zip = b.build_with(zip_opts);
        assert!(zip.replica(0, SortOrder::SO).unwrap().is_compressed());

        // Insert absent (s0, o_j) pairs for j % 4 != 0 — ids must stay
        // inside the base dictionary (the engine extends DictDelta for
        // genuinely new terms; this test mutates existing resources).
        let s0 = rid(&raw, "s0");
        let mut batch_ins: Vec<(Id, Id)> = (1..60)
            .filter(|j| j % 4 != 0)
            .map(|j| (s0, rid(&raw, &format!("o{j}"))))
            .collect();
        batch_ins.sort_unstable();
        let batch_del: Vec<(Id, Id)> = raw
            .partition(0)
            .unwrap()
            .iter_so()
            .step_by(13)
            .collect();
        let run = |base: &TripleStore| {
            let mut ov = DeltaOverlay::new(base);
            ov.apply_pred(base, 0, &batch_ins, &[]);
            ov.apply_pred(base, 0, &[], &batch_del);
            assert_eq!(ov.check_invariants(base), Ok(()));
            let dirty = ov.merged_so_pairs(base, 0);
            let view = StoreView::with_delta(base, &ov);
            let rep = view.replica(0, SortOrder::SO).unwrap();
            let mut probe = Vec::new();
            rep.merged_values_into(1, &mut probe);
            ov.compact_pred(base, 0);
            assert_eq!(ov.check_invariants(base), Ok(()));
            assert_eq!(ov.merged_so_pairs(base, 0), dirty);
            (dirty, probe, ov)
        };
        let (raw_pairs, raw_probe, _) = run(&raw);
        let (zip_pairs, zip_probe, zip_ov) = run(&zip);
        assert_eq!(raw_pairs, zip_pairs);
        assert_eq!(raw_probe, zip_probe);
        // The compacted replacement re-applied the compression policy.
        let comp = zip_ov.pred(0).unwrap().compacted().unwrap();
        assert!(comp.replica(SortOrder::SO).is_compressed());
    }

    #[test]
    fn merge_group_matches_merge_values() {
        let base: Vec<Id> = (0..500).map(|i| i * 3).collect();
        let add = vec![1, 4, 2000];
        let del = vec![0, 300, 1497];
        let offsets = vec![0, base.len() as u32];
        let packed = crate::codec::PackedValues::pack(&offsets, &base);
        let mut a = Vec::new();
        let mut b = Vec::new();
        merge_values_into(&base, &add, &del, &mut a);
        merge_group_into(
            crate::Group::Packed(packed.run(0, &offsets)),
            &add,
            &del,
            &mut b,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn merge_values_handles_interleaving() {
        let mut out = Vec::new();
        merge_values_into(&[2, 4, 6], &[1, 5, 9], &[4], &mut out);
        assert_eq!(out, vec![1, 2, 5, 6, 9]);
        out.clear();
        merge_values_into(&[], &[3], &[], &mut out);
        assert_eq!(out, vec![3]);
        out.clear();
        merge_values_into(&[3], &[], &[3], &mut out);
        assert!(out.is_empty());
    }
}
