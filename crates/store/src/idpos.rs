//! The ID-to-Position index of §4.2: a rank/select-style bitmap that maps
//! a dictionary id directly to its position in a replica's sorted keys
//! array, replacing binary search with one anchor read plus popcounts.
//!
//! The paper's layout stores, at every `interval` ids, "an integer to
//! denote the position of the property table", followed by one presence
//! bit per id. Finding a position reads that anchor and "counts bits set
//! to 1 up to the position ... corresponding to the value" — a popcount.
//! With interval `A` and `M`-byte integers the space is
//! `N/8 + (N/A)*M` bytes (§4.2); at the paper's LUBM-10240 scale this is
//! ~44.8 MB per replica versus 45.7 GB for a plain position array.

use parj_dict::Id;

/// Rank-based id → keys-position index.
///
/// `interval` must be a multiple of 64 so blocks align to `u64` bitmap
/// words. The default used by the store is 512 (8 words + one `u32`
/// anchor per block ≈ 1.06 bits/id, the same regime as the paper's
/// interval of 480).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdPosIndex {
    /// Number of ids covered (the dictionary's resource count).
    universe: usize,
    /// Ids per block; multiple of 64.
    interval: usize,
    /// `anchors[b]` = number of present ids with id < b*interval.
    anchors: Vec<u32>,
    /// Presence bitmap, `universe.div_ceil(64)` words, padded with zeros.
    bits: Vec<u64>,
}

impl IdPosIndex {
    /// Builds the index for the sorted distinct `keys` of a replica over
    /// a dictionary of `universe` ids.
    ///
    /// # Panics
    /// Panics if `interval` is zero or not a multiple of 64, or if any
    /// key is `>= universe`.
    pub fn build(keys: &[Id], universe: usize, interval: usize) -> Self {
        assert!(
            interval > 0 && interval.is_multiple_of(64),
            "interval must be a positive multiple of 64"
        );
        if let Some(&max) = keys.last() {
            assert!((max as usize) < universe, "key {max} outside universe {universe}");
        }
        let n_words = universe.div_ceil(64);
        let n_blocks = universe.div_ceil(interval);
        let mut bits = vec![0u64; n_words];
        for &k in keys {
            let k = k as usize;
            bits[k / 64] |= 1u64 << (k % 64);
        }
        let words_per_block = interval / 64;
        let mut anchors = Vec::with_capacity(n_blocks);
        let mut running: u32 = 0;
        for b in 0..n_blocks {
            anchors.push(running);
            let start = b * words_per_block;
            let end = ((b + 1) * words_per_block).min(n_words);
            for &w in &bits[start..end] {
                running += w.count_ones();
            }
        }
        debug_assert_eq!(running as usize, keys.len());
        IdPosIndex {
            universe,
            interval,
            anchors,
            bits,
        }
    }

    /// Returns the position of `id` in the replica's keys array, or
    /// `None` if the id is absent (or outside the universe).
    #[inline]
    pub fn lookup(&self, id: Id) -> Option<usize> {
        let id = id as usize;
        if id >= self.universe {
            return None;
        }
        let word_idx = id / 64;
        let bit = id % 64;
        let word = self.bits[word_idx];
        if word & (1u64 << bit) == 0 {
            return None;
        }
        let block = id / self.interval;
        let mut rank = self.anchors[block] as usize;
        // Whole words between the block start and the id's word.
        for &w in &self.bits[block * (self.interval / 64)..word_idx] {
            rank += w.count_ones() as usize;
        }
        // Partial word: bits strictly below `bit`.
        rank += (word & ((1u64 << bit) - 1)).count_ones() as usize;
        Some(rank)
    }

    /// True if `id` is present.
    #[inline]
    pub fn contains(&self, id: Id) -> bool {
        let id = id as usize;
        id < self.universe && self.bits[id / 64] & (1u64 << (id % 64)) != 0
    }

    /// Number of ids covered.
    #[inline]
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Block interval in ids.
    #[inline]
    pub fn interval(&self) -> usize {
        self.interval
    }

    /// Memory used by the bitmap and anchors in bytes — the `N/8 +
    /// (N/A)*M` of §4.2.
    pub fn memory_bytes(&self) -> usize {
        self.bits.len() * 8 + self.anchors.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_section42_example() {
        // §4.2 walks through the Figure 1 property (keys 5,7,13,18,24,
        // 29,33,45, dictionary max id 45): position of 5 is 0, of 7 is 1,
        // of 13 is 2, "and so on for positions 18,24,29,33 and 45".
        let keys = [5, 7, 13, 18, 24, 29, 33, 45];
        let idx = IdPosIndex::build(&keys, 46, 64);
        for (pos, &k) in keys.iter().enumerate() {
            assert_eq!(idx.lookup(k), Some(pos), "key {k}");
        }
        // "If bit is not set, then value is not present".
        for absent in [0, 1, 4, 6, 8, 12, 14, 30, 44] {
            assert_eq!(idx.lookup(absent), None, "id {absent}");
        }
    }

    #[test]
    fn multi_block() {
        // Keys spread over several 64-id blocks, including block borders.
        let keys: Vec<Id> = vec![0, 63, 64, 127, 128, 200, 300, 449];
        let idx = IdPosIndex::build(&keys, 450, 64);
        for (pos, &k) in keys.iter().enumerate() {
            assert_eq!(idx.lookup(k), Some(pos));
        }
        assert_eq!(idx.lookup(65), None);
        assert_eq!(idx.lookup(449), Some(7));
        assert_eq!(idx.lookup(448), None);
    }

    #[test]
    fn out_of_universe_is_none() {
        let idx = IdPosIndex::build(&[1, 2], 10, 64);
        assert_eq!(idx.lookup(10), None);
        assert_eq!(idx.lookup(Id::MAX), None);
        assert!(!idx.contains(10));
    }

    #[test]
    fn empty_keys() {
        let idx = IdPosIndex::build(&[], 100, 64);
        for id in 0..100 {
            assert_eq!(idx.lookup(id), None);
        }
    }

    #[test]
    fn dense_keys_every_position() {
        let keys: Vec<Id> = (0..1000).collect();
        let idx = IdPosIndex::build(&keys, 1000, 128);
        for k in 0..1000u32 {
            assert_eq!(idx.lookup(k), Some(k as usize));
        }
    }

    #[test]
    fn agrees_with_binary_search_on_random_sets() {
        // Deterministic pseudo-random key sets; oracle = binary search.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..20 {
            let universe = 1 + (next() % 5000) as usize;
            let mut keys: Vec<Id> = (0..(next() % 400))
                .map(|_| (next() % universe as u64) as Id)
                .collect();
            keys.sort_unstable();
            keys.dedup();
            let interval = [64usize, 128, 512][trial % 3];
            let idx = IdPosIndex::build(&keys, universe, interval);
            for probe in 0..universe as Id {
                assert_eq!(
                    idx.lookup(probe),
                    keys.binary_search(&probe).ok(),
                    "trial {trial} probe {probe}"
                );
            }
        }
    }

    #[test]
    fn memory_formula() {
        // §4.2: N/8 bytes of bits + (N/A)*4 bytes of anchors.
        let universe = 512 * 100;
        let idx = IdPosIndex::build(&[0, 511, 51199], universe, 512);
        assert_eq!(idx.memory_bytes(), universe / 8 + (universe / 512) * 4);
    }

    #[test]
    #[should_panic(expected = "multiple of 64")]
    fn rejects_unaligned_interval() {
        IdPosIndex::build(&[], 100, 100);
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn rejects_key_outside_universe() {
        IdPosIndex::build(&[10], 10, 64);
    }
}
