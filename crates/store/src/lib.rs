//! # parj-store — PARJ physical data storage
//!
//! The in-memory RDF storage layout of Section 3 of the PARJ paper
//! (Bilidas & Koubarakis, EDBT 2019), plus the ID-to-Position index of
//! Section 4.2.
//!
//! ## Layout
//!
//! After dictionary encoding, the data is **vertically partitioned**: one
//! [`Partition`] per predicate. Each partition keeps **two replicas** of
//! its two-column table:
//!
//! * the **S-O replica**, sorted by subject then object, and
//! * the **O-S replica**, sorted by object then subject,
//!
//! corresponding to the PSO and POS indexes of Hexastore. A [`Replica`]
//! stores the *distinct* first-column values in one sorted `keys` array;
//! the second column lives in a single contiguous `values` array with an
//! `offsets` table mapping each key position to its sorted group of
//! values — the paper's Figure 1, with the optimization it describes of
//! "allocating the different object arrays to a continuous memory area"
//! and keeping offsets instead of per-position pointers. This is a CSR
//! adjacency layout: compact, cache-friendly, and reconstruction of a
//! tuple is `(keys[i], values[j])` for `offsets[i] <= j < offsets[i+1]`.
//!
//! ## ID-to-Position index (§4.2)
//!
//! [`IdPosIndex`] maps a dictionary id directly to its position in a
//! replica's `keys` array without binary search: every `interval` ids it
//! stores an anchor integer (the number of present ids before the block)
//! followed by a presence bitmap; a lookup is one bit test plus a
//! popcount over the partial block — "one memory access and some
//! computation that can be done efficiently as a popcount operation".
//!
//! ```
//! use parj_dict::Term;
//! use parj_store::{StoreBuilder, SortOrder};
//!
//! let mut b = StoreBuilder::new();
//! b.add_term_triple(&Term::iri("e:ProfA"), &Term::iri("e:teaches"), &Term::iri("e:Math"));
//! b.add_term_triple(&Term::iri("e:ProfA"), &Term::iri("e:teaches"), &Term::iri("e:Physics"));
//! b.add_term_triple(&Term::iri("e:ProfB"), &Term::iri("e:teaches"), &Term::iri("e:Chem"));
//! let store = b.build();
//! let teaches = store.dict().predicate_id(&Term::iri("e:teaches")).unwrap();
//! let so = store.replica(teaches, SortOrder::SO).unwrap();
//! assert_eq!(so.num_keys(), 2);          // two distinct subjects
//! assert_eq!(so.num_triples(), 3);
//! ```

// `deny` rather than `forbid`: the block codec in `codec.rs` carries the
// workspace's single audited `unsafe` exception (std::arch SIMD behind
// runtime feature detection), opted in via a module-local
// `#![allow(unsafe_code)]`. `cargo xtask lint` polices that the
// exception never widens beyond that one file.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
mod delta;
mod idpos;
mod parallel;
mod partition;
mod replica;
mod snapshot;
mod store;

pub use codec::{simd_active, PackedValues, BLOCK_LEN};
pub use delta::{
    merge_group_into, merge_values_into, sorted_contains, DeltaOverlay, PredApply,
    PredDelta, ReplicaView, StoreView,
};
pub use idpos::IdPosIndex;
pub use partition::Partition;
pub use replica::{Group, GroupIter, Replica, ReplicaBuilder};
pub use snapshot::{SnapshotError, SNAPSHOT_MAGIC, SNAPSHOT_VERSION};
pub use store::{SortOrder, StoreBuilder, StoreOptions, TripleStore};
