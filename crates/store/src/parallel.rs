//! Parallel triple staging: fused dictionary encode + per-predicate
//! pair routing for the bulk loader.
//!
//! [`StoreBuilder::add_triples_parallel`] stages parsed triples on N
//! workers while producing *exactly* the builder state a serial
//! [`StoreBuilder::add_term_triple`] loop over the same triples in
//! document order would — same dictionary bytes, same built store:
//!
//! 1. **Collect** (parallel per chunk): canonicalize every term, probe
//!    the existing dictionary, and record each triple as three
//!    [`TermRef`]s — a known id, or an index into the chunk's
//!    deduplicated novel-term batch.
//! 2. **Assign** ([`parj_dict::Namespace::extend_batches`]): the
//!    sharded two-phase encode appends the novel terms in document
//!    first-occurrence order, so ids are independent of thread count.
//! 3. **Route** (parallel per chunk): resolve the refs and push
//!    `(subject, object)` pairs into worker-local per-predicate
//!    buffers, merged into the builder by concatenation. Pair order
//!    within a predicate varies with scheduling, but the replica build
//!    sorts and dedups every partition, so the finished store is still
//!    byte-identical at any thread count.

use std::collections::HashMap;

use parj_sync::atomic::{AtomicUsize, Ordering};
use parj_sync::{LockLevel, OrderedMutex};

use parj_dict::{fx_hash_bytes, FxBuildHasher, Id, Namespace, Term, TermBatch};

use crate::store::StoreBuilder;

/// Shard count for the two-phase dictionary encode. Power of two
/// (required for mask routing), comfortably above typical core counts
/// so every worker finds a free shard, small enough that the per-shard
/// hash maps stay cheap on tiny loads.
const DICT_SHARDS: usize = 32;

/// A term occurrence after the collect phase.
#[derive(Debug, Clone, Copy)]
enum TermRef {
    /// Already interned before this staging call.
    Known(Id),
    /// Novel: index into the chunk's candidate batch.
    Novel(u32),
}

type RefTriple = (TermRef, TermRef, TermRef);

/// Per-chunk dedup helper: canonical key → `TermRef`, probing the
/// shared namespace first and the chunk-local batch second.
struct Collector<'a> {
    ns: &'a Namespace,
    batch: TermBatch,
    dedup: HashMap<u64, Vec<u32>, FxBuildHasher>,
}

impl<'a> Collector<'a> {
    fn new(ns: &'a Namespace) -> Self {
        Self {
            ns,
            batch: TermBatch::new(),
            dedup: HashMap::default(),
        }
    }

    fn collect(&mut self, term: &Term) -> TermRef {
        let key = term.canonical_key();
        let hash = fx_hash_bytes(key.as_bytes());
        if let Some(id) = self.ns.get_key_hashed(hash, &key) {
            return TermRef::Known(id);
        }
        if let Some(cands) = self.dedup.get(&hash) {
            for &i in cands {
                if self.batch.key(i as usize) == key {
                    return TermRef::Novel(i);
                }
            }
        }
        let i = self.batch.push(hash, key);
        self.dedup.entry(hash).or_default().push(i);
        TermRef::Novel(i)
    }
}

fn collect_chunk(
    resources: &Namespace,
    predicates: &Namespace,
    chunk: &[(Term, Term, Term)],
) -> (TermBatch, TermBatch, Vec<RefTriple>) {
    let mut res = Collector::new(resources);
    let mut pred = Collector::new(predicates);
    let mut refs = Vec::with_capacity(chunk.len());
    for (s, p, o) in chunk {
        refs.push((res.collect(s), pred.collect(p), res.collect(o)));
    }
    (res.batch, pred.batch, refs)
}

fn resolve(r: TermRef, ids: &[Id]) -> Id {
    match r {
        TermRef::Known(id) => id,
        TermRef::Novel(i) => ids[i as usize],
    }
}

impl StoreBuilder {
    /// Stages `chunks` of parsed triples on `threads` workers. The
    /// chunks must be consecutive slices of the input in document
    /// order; the resulting dictionary and built store are identical
    /// to serially adding every triple in that order, for any
    /// `threads` and any chunk boundaries.
    pub fn add_triples_parallel(&mut self, chunks: Vec<Vec<(Term, Term, Term)>>, threads: usize) {
        let threads = threads.max(1);
        let n_chunks = chunks.len();
        if n_chunks == 0 {
            return;
        }
        let (dict, by_pred) = self.parts_mut();

        // Phase 1: collect novel terms per chunk against the current
        // dictionary (read-only, embarrassingly parallel).
        let collected: Vec<(TermBatch, TermBatch, Vec<RefTriple>)> =
            if threads <= 1 || n_chunks <= 1 {
                chunks
                    .iter()
                    .map(|c| {
                        collect_chunk(dict.resource_namespace(), dict.predicate_namespace(), c)
                    })
                    .collect()
            } else {
                let resources = dict.resource_namespace();
                let predicates = dict.predicate_namespace();
                let next = AtomicUsize::new(0);
                let mut slots: Vec<Option<(TermBatch, TermBatch, Vec<RefTriple>)>> = Vec::new();
                slots.resize_with(n_chunks, || None);
                let slot_ptrs: Vec<OrderedMutex<&mut Option<_>>> = slots
                    .iter_mut()
                    .map(|s| OrderedMutex::new(LockLevel::Staging, "staging.store_slot", s))
                    .collect();
                parj_sync::thread::scope(|scope| {
                    for _ in 0..threads.min(n_chunks) {
                        scope.spawn(|| loop {
                            // ordering: Relaxed — chunk ticket only;
                            // results are published through slot
                            // Mutexes and the scope join edge
                            // (loom_parallel model).
                            let c = next.fetch_add(1, Ordering::Relaxed);
                            if c >= n_chunks {
                                break;
                            }
                            let out = collect_chunk(resources, predicates, &chunks[c]);
                            **slot_ptrs[c].lock() = Some(out);
                        });
                    }
                });
                drop(slot_ptrs);
                slots
                    .into_iter()
                    .map(|s| s.expect("every chunk collected"))
                    .collect()
            };
        drop(chunks);
        let mut res_batches = Vec::with_capacity(n_chunks);
        let mut pred_batches = Vec::with_capacity(n_chunks);
        let mut ref_triples = Vec::with_capacity(n_chunks);
        for (r, p, t) in collected {
            res_batches.push(r);
            pred_batches.push(p);
            ref_triples.push(t);
        }

        // Phase 2: deterministic id assignment (document order).
        let res_ids = dict.extend_resources(&res_batches, DICT_SHARDS, threads);
        let pred_ids = dict.extend_predicates(&pred_batches, DICT_SHARDS, threads);
        let n_preds = dict.num_predicates();
        if by_pred.len() < n_preds {
            by_pred.resize_with(n_preds, Vec::new);
        }

        // Phase 3: resolve refs and route pairs per predicate.
        if threads <= 1 || n_chunks <= 1 {
            for (c, refs) in ref_triples.iter().enumerate() {
                for &(s, p, o) in refs {
                    let p = resolve(p, &pred_ids[c]);
                    by_pred[p as usize]
                        .push((resolve(s, &res_ids[c]), resolve(o, &res_ids[c])));
                }
            }
        } else {
            // One per-predicate pair table per worker.
            type WorkerTable = Vec<Vec<(Id, Id)>>;
            let next = AtomicUsize::new(0);
            let tables: OrderedMutex<Vec<WorkerTable>> =
                OrderedMutex::new(LockLevel::Staging, "staging.pair_tables", Vec::new());
            parj_sync::thread::scope(|scope| {
                for _ in 0..threads.min(n_chunks) {
                    scope.spawn(|| {
                        let mut local: Vec<Vec<(Id, Id)>> = vec![Vec::new(); n_preds];
                        loop {
                            // ordering: Relaxed — chunk ticket only;
                            // worker tables are published through the
                            // tables Mutex (loom_parallel model).
                            let c = next.fetch_add(1, Ordering::Relaxed);
                            if c >= n_chunks {
                                break;
                            }
                            for &(s, p, o) in &ref_triples[c] {
                                let p = resolve(p, &pred_ids[c]);
                                local[p as usize]
                                    .push((resolve(s, &res_ids[c]), resolve(o, &res_ids[c])));
                            }
                        }
                        tables.lock().push(local);
                    });
                }
            });
            for local in tables.into_inner() {
                for (p, mut pairs) in local.into_iter().enumerate() {
                    by_pred[p].append(&mut pairs);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triples(n: usize) -> Vec<(Term, Term, Term)> {
        (0..n)
            .map(|i| {
                (
                    Term::iri(format!("http://e/s{}", i % 23)),
                    Term::iri(format!("http://e/p{}", i % 5)),
                    if i % 3 == 0 {
                        Term::literal(format!("v{}", i % 17))
                    } else {
                        Term::iri(format!("http://e/s{}", (i + 7) % 31))
                    },
                )
            })
            .collect()
    }

    fn serial_build(data: &[(Term, Term, Term)]) -> (Vec<u8>, Vec<u8>) {
        let mut b = StoreBuilder::new();
        for (s, p, o) in data {
            b.add_term_triple(s, p, o);
        }
        let mut dict_bytes = Vec::new();
        b.dict().encode_into(&mut dict_bytes);
        (dict_bytes, b.build().to_snapshot_bytes())
    }

    #[test]
    fn parallel_staging_matches_serial_byte_for_byte() {
        let data = triples(400);
        let (serial_dict, serial_store) = serial_build(&data);
        for threads in [1, 2, 4, 9] {
            for n_chunks in [1, 3, 8] {
                let per = data.len().div_ceil(n_chunks);
                let chunks: Vec<Vec<_>> = data.chunks(per).map(<[_]>::to_vec).collect();
                let mut b = StoreBuilder::new();
                b.add_triples_parallel(chunks, threads);
                let mut dict_bytes = Vec::new();
                b.dict().encode_into(&mut dict_bytes);
                assert_eq!(dict_bytes, serial_dict, "dict, {threads} threads");
                assert_eq!(
                    b.build().to_snapshot_bytes(),
                    serial_store,
                    "store, {threads} threads / {n_chunks} chunks"
                );
            }
        }
    }

    #[test]
    fn incremental_staging_sees_existing_terms() {
        let data = triples(100);
        let (first, second) = data.split_at(50);
        let (serial_dict, serial_store) = serial_build(&data);
        let mut b = StoreBuilder::new();
        for (s, p, o) in first {
            b.add_term_triple(s, p, o);
        }
        b.add_triples_parallel(vec![second[..20].to_vec(), second[20..].to_vec()], 4);
        let mut dict_bytes = Vec::new();
        b.dict().encode_into(&mut dict_bytes);
        assert_eq!(dict_bytes, serial_dict);
        assert_eq!(b.build().to_snapshot_bytes(), serial_store);
    }

    #[test]
    fn empty_chunks_are_harmless() {
        let mut b = StoreBuilder::new();
        b.add_triples_parallel(Vec::new(), 4);
        b.add_triples_parallel(vec![Vec::new(), Vec::new()], 4);
        assert!(b.is_empty());
    }
}
