//! A property partition: the two sort-order replicas for one predicate.

use parj_dict::Id;

use crate::replica::{Replica, ReplicaBuilder};
use crate::store::SortOrder;

/// The vertical partition for one predicate: an S-O replica (`prop_i` in
/// the paper's notation) and an O-S replica (`prop_i'`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Partition {
    predicate: Id,
    so: Replica,
    os: Replica,
}

impl Partition {
    /// Builds both replicas from raw `(subject, object)` pairs (not
    /// necessarily sorted or unique).
    pub fn build(predicate: Id, pairs: &[(Id, Id)]) -> Self {
        let mut so = ReplicaBuilder::with_capacity(pairs.len());
        let mut os = ReplicaBuilder::with_capacity(pairs.len());
        for &(s, o) in pairs {
            so.push(s, o);
            os.push(o, s);
        }
        Partition {
            predicate,
            so: so.finish(),
            os: os.finish(),
        }
    }

    /// The predicate id this partition stores.
    #[inline]
    pub fn predicate(&self) -> Id {
        self.predicate
    }

    /// The replica with the requested sort order.
    #[inline]
    pub fn replica(&self, order: SortOrder) -> &Replica {
        match order {
            SortOrder::SO => &self.so,
            SortOrder::OS => &self.os,
        }
    }

    /// Mutable replica access (index building).
    #[inline]
    pub fn replica_mut(&mut self, order: SortOrder) -> &mut Replica {
        match order {
            SortOrder::SO => &mut self.so,
            SortOrder::OS => &mut self.os,
        }
    }

    /// Number of distinct triples with this predicate.
    #[inline]
    pub fn num_triples(&self) -> usize {
        self.so.num_triples()
    }

    /// Number of distinct subjects.
    #[inline]
    pub fn num_subjects(&self) -> usize {
        self.so.num_keys()
    }

    /// Number of distinct objects.
    #[inline]
    pub fn num_objects(&self) -> usize {
        self.os.num_keys()
    }

    /// True if `(s, o)` is present.
    pub fn contains(&self, s: Id, o: Id) -> bool {
        self.so.group_for_key(s).contains(o)
    }

    /// Block-compresses both replicas' value areas when they hold at
    /// least `min_values` triples and compression actually shrinks
    /// them. Returns whether either replica is compressed afterwards.
    pub fn compress_values(&mut self, min_values: usize) -> bool {
        let a = self.so.compress(min_values);
        let b = self.os.compress(min_values);
        a || b
    }

    /// Iterates all `(subject, object)` pairs in (s, o) order.
    pub fn iter_so(&self) -> impl Iterator<Item = (Id, Id)> + '_ {
        self.so.iter_pairs()
    }

    /// Combined memory of both replicas.
    pub fn memory_bytes(&self) -> usize {
        self.so.memory_bytes() + self.os.memory_bytes()
    }

    /// Checks both replicas' invariants plus their mutual consistency
    /// (same multiset of triples, equal cardinalities).
    pub fn check_invariants(&self) -> Result<(), String> {
        self.so.check_invariants().map_err(|e| format!("SO: {e}"))?;
        self.os.check_invariants().map_err(|e| format!("OS: {e}"))?;
        if self.so.num_triples() != self.os.num_triples() {
            return Err(format!(
                "replica cardinality mismatch: SO={} OS={}",
                self.so.num_triples(),
                self.os.num_triples()
            ));
        }
        let mut from_so: Vec<(Id, Id)> = self.so.iter_pairs().collect();
        let mut from_os: Vec<(Id, Id)> = self.os.iter_pairs().map(|(o, s)| (s, o)).collect();
        from_so.sort_unstable();
        from_os.sort_unstable();
        if from_so != from_os {
            return Err("SO and OS replicas disagree on triple set".into());
        }
        Ok(())
    }

    /// Rebuilds a partition from already-validated replicas (snapshot
    /// loading path).
    pub(crate) fn from_replicas(predicate: Id, so: Replica, os: Replica) -> Self {
        Partition { predicate, so, os }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The running example of §3: `teaches` triples from Table 1.
    /// ProfessorA(1) teaches Mathematics(3) & Physics(8), ProfessorB(4)
    /// teaches Chemistry(5), ProfessorC(6) teaches Literature(7).
    fn teaches() -> Partition {
        Partition::build(0, &[(1, 3), (4, 5), (6, 7), (1, 8)])
    }

    #[test]
    fn both_replicas_constructed() {
        let p = teaches();
        assert_eq!(p.num_triples(), 4);
        assert_eq!(p.num_subjects(), 3);
        assert_eq!(p.num_objects(), 4);
        assert_eq!(p.replica(SortOrder::SO).keys(), &[1, 4, 6]);
        assert_eq!(p.replica(SortOrder::SO).values_for_key(1), &[3, 8]);
        assert_eq!(p.replica(SortOrder::OS).keys(), &[3, 5, 7, 8]);
        assert_eq!(p.replica(SortOrder::OS).values_for_key(8), &[1]);
        assert_eq!(p.check_invariants(), Ok(()));
    }

    #[test]
    fn contains() {
        let p = teaches();
        assert!(p.contains(1, 3));
        assert!(p.contains(1, 8));
        assert!(!p.contains(1, 5));
        assert!(!p.contains(99, 3));
    }

    #[test]
    fn duplicate_triples_are_set_semantics() {
        let p = Partition::build(0, &[(1, 2), (1, 2), (1, 2)]);
        assert_eq!(p.num_triples(), 1);
    }

    #[test]
    fn iter_so_is_sorted() {
        let p = teaches();
        let pairs: Vec<_> = p.iter_so().collect();
        assert_eq!(pairs, vec![(1, 3), (1, 8), (4, 5), (6, 7)]);
    }

    #[test]
    fn compressed_partition_stays_consistent() {
        let mut pairs = Vec::new();
        for s in 0..60u32 {
            for j in 0..1 + (s * 13) % 300 {
                pairs.push((s, j * 2 + s));
            }
        }
        let mut p = Partition::build(2, &pairs);
        let raw = p.clone();
        assert!(p.compress_values(1));
        assert_eq!(p.check_invariants(), Ok(()));
        assert_eq!(p, raw, "compression is logically invisible");
        for &(s, o) in pairs.iter().step_by(17) {
            assert!(p.contains(s, o));
        }
        assert!(!p.contains(0, 1));
        assert!(p.memory_bytes() < raw.memory_bytes());
    }

    #[test]
    fn empty_partition() {
        let p = Partition::build(3, &[]);
        assert_eq!(p.num_triples(), 0);
        assert_eq!(p.check_invariants(), Ok(()));
    }
}
