//! One sort-order replica of a property's two-column table (Figure 1 of
//! the paper): distinct sorted keys, a CSR offsets table, and one
//! contiguous sorted-per-group values area.

use parj_dict::Id;

use crate::idpos::IdPosIndex;

/// A single replica (S-O or O-S) of a property partition.
///
/// Invariants (checked by [`Replica::check_invariants`], relied on by the
/// join layer):
///
/// 1. `keys` is strictly increasing (distinct, sorted).
/// 2. `offsets.len() == keys.len() + 1`, `offsets[0] == 0`,
///    `offsets` is strictly increasing (every key has ≥ 1 value), and
///    `offsets[keys.len()] == values.len()`.
/// 3. Each group `values[offsets[i]..offsets[i+1]]` is strictly
///    increasing (values are distinct within a key: RDF graphs are sets).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Replica {
    keys: Vec<Id>,
    offsets: Vec<u32>,
    values: Vec<Id>,
    idpos: Option<IdPosIndex>,
}

impl Replica {
    /// The distinct, sorted first-column values.
    #[inline]
    pub fn keys(&self) -> &[Id] {
        &self.keys
    }

    /// Number of distinct keys.
    #[inline]
    pub fn num_keys(&self) -> usize {
        self.keys.len()
    }

    /// Number of `(key, value)` pairs, i.e. triples in this replica.
    #[inline]
    pub fn num_triples(&self) -> usize {
        self.values.len()
    }

    /// True if the replica holds no triples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The sorted values group for the key at position `pos`.
    ///
    /// # Panics
    /// Panics if `pos >= num_keys()`.
    #[inline]
    pub fn values_at(&self, pos: usize) -> &[Id] {
        let start = self.offsets[pos] as usize;
        let end = self.offsets[pos + 1] as usize;
        &self.values[start..end]
    }

    /// The key at position `pos`.
    #[inline]
    pub fn key_at(&self, pos: usize) -> Id {
        self.keys[pos]
    }

    /// Group size for the key at `pos` without touching the values array.
    #[inline]
    pub fn group_len(&self, pos: usize) -> usize {
        (self.offsets[pos + 1] - self.offsets[pos]) as usize
    }

    /// The raw CSR offsets table (`num_keys() + 1` entries).
    #[inline]
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// The contiguous values area.
    #[inline]
    pub fn values(&self) -> &[Id] {
        &self.values
    }

    /// Plain binary search for `key` over the whole keys array.
    #[inline]
    pub fn find_key(&self, key: Id) -> Option<usize> {
        self.keys.binary_search(&key).ok()
    }

    /// The values group for `key`, empty if absent (uses the
    /// ID-to-Position index when present).
    pub fn values_for_key(&self, key: Id) -> &[Id] {
        let pos = match &self.idpos {
            Some(idx) => idx.lookup(key),
            None => self.find_key(key),
        };
        match pos {
            Some(p) => self.values_at(p),
            None => &[],
        }
    }

    /// The ID-to-Position index, if built.
    #[inline]
    pub fn idpos(&self) -> Option<&IdPosIndex> {
        self.idpos.as_ref()
    }

    /// Builds (or rebuilds) the ID-to-Position index over `universe`
    /// dictionary ids with the given block interval.
    pub fn build_idpos(&mut self, universe: usize, interval: usize) {
        self.idpos = Some(IdPosIndex::build(&self.keys, universe, interval));
    }

    /// Drops the ID-to-Position index (the paper notes the index is
    /// auxiliary: "our system can operate without all or some of these
    /// indexes").
    pub fn drop_idpos(&mut self) {
        self.idpos = None;
    }

    /// Iterates `(key, values_group)` pairs in key order.
    pub fn iter_groups(&self) -> impl Iterator<Item = (Id, &[Id])> + '_ {
        (0..self.num_keys()).map(move |i| (self.keys[i], self.values_at(i)))
    }

    /// Iterates all `(key, value)` pairs in `(key, value)` order.
    pub fn iter_pairs(&self) -> impl Iterator<Item = (Id, Id)> + '_ {
        self.iter_groups()
            .flat_map(|(k, vs)| vs.iter().map(move |&v| (k, v)))
    }

    /// Bytes used by the arrays (excluding the optional index).
    pub fn memory_bytes(&self) -> usize {
        self.keys.len() * std::mem::size_of::<Id>()
            + self.offsets.len() * 4
            + self.values.len() * std::mem::size_of::<Id>()
            + self.idpos.as_ref().map_or(0, |i| i.memory_bytes())
    }

    /// Verifies all structural invariants; returns a description of the
    /// first violation. Used by tests and the snapshot loader.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.offsets.len() != self.keys.len() + 1 {
            return Err(format!(
                "offsets len {} != keys len {} + 1",
                self.offsets.len(),
                self.keys.len()
            ));
        }
        if self.offsets.first() != Some(&0) {
            return Err("offsets[0] != 0".into());
        }
        if *self.offsets.last().expect("non-empty offsets") as usize != self.values.len() {
            return Err("offsets tail != values len".into());
        }
        for w in self.keys.windows(2) {
            if w[0] >= w[1] {
                return Err(format!("keys not strictly increasing at {}..{}", w[0], w[1]));
            }
        }
        for w in self.offsets.windows(2) {
            if w[0] >= w[1] {
                return Err("empty value group (offsets not strictly increasing)".into());
            }
        }
        for i in 0..self.num_keys() {
            let g = self.values_at(i);
            for w in g.windows(2) {
                if w[0] >= w[1] {
                    return Err(format!("group {i} not strictly increasing"));
                }
            }
        }
        if let Some(idx) = &self.idpos {
            for (pos, &k) in self.keys.iter().enumerate() {
                if idx.lookup(k) != Some(pos) {
                    return Err(format!("idpos lookup({k}) != {pos}"));
                }
            }
        }
        Ok(())
    }

    /// Raw parts for snapshot encoding.
    pub(crate) fn raw_parts(&self) -> (&[Id], &[u32], &[Id]) {
        (&self.keys, &self.offsets, &self.values)
    }

    /// Rebuilds from raw parts, validating invariants.
    pub(crate) fn from_raw_parts(
        keys: Vec<Id>,
        offsets: Vec<u32>,
        values: Vec<Id>,
    ) -> Result<Self, String> {
        let r = Replica {
            keys,
            offsets,
            values,
            idpos: None,
        };
        r.check_invariants()?;
        Ok(r)
    }
}

/// Builds a [`Replica`] from `(first, second)` column pairs.
///
/// The input need not be sorted or deduplicated; `finish` sorts,
/// deduplicates (RDF set semantics) and emits the CSR arrays.
#[derive(Debug, Default)]
pub struct ReplicaBuilder {
    pairs: Vec<(Id, Id)>,
}

impl ReplicaBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder with capacity for `n` pairs.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            pairs: Vec::with_capacity(n),
        }
    }

    /// Adds one `(key, value)` pair.
    #[inline]
    pub fn push(&mut self, key: Id, value: Id) {
        self.pairs.push((key, value));
    }

    /// Number of buffered pairs (before dedup).
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True if no pairs buffered.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Sorts, deduplicates and emits the replica.
    pub fn finish(mut self) -> Replica {
        self.pairs.sort_unstable();
        self.pairs.dedup();
        Self::from_sorted_unique(self.pairs)
    }

    /// Builds directly from pairs already sorted and deduplicated
    /// (debug-asserted).
    pub fn from_sorted_unique(pairs: Vec<(Id, Id)>) -> Replica {
        debug_assert!(pairs.windows(2).all(|w| w[0] < w[1]), "pairs not sorted+unique");
        assert!(
            pairs.len() <= u32::MAX as usize,
            "replica exceeds u32 offset range ({} pairs)",
            pairs.len()
        );
        let mut keys: Vec<Id> = Vec::new();
        let mut offsets: Vec<u32> = vec![0];
        let mut values: Vec<Id> = Vec::with_capacity(pairs.len());
        for (k, v) in pairs {
            if keys.last() != Some(&k) {
                if !keys.is_empty() {
                    offsets.push(values.len() as u32);
                }
                keys.push(k);
            }
            values.push(v);
        }
        offsets.push(values.len() as u32);
        if keys.is_empty() {
            // Canonical empty replica: offsets = [0].
            offsets = vec![0];
        }
        let r = Replica {
            keys,
            offsets,
            values,
            idpos: None,
        };
        debug_assert_eq!(r.check_invariants(), Ok(()));
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The exact example of Figure 1: property table containing triples
    /// 5-8, 7-8, 7-34, 13-40, 18-3, 24-9, 24-16, 24-41, 29-40, 33-22,
    /// 45-4 (keys 5,7,13,18,24,29,33,45).
    fn figure1() -> Replica {
        let mut b = ReplicaBuilder::new();
        for (k, v) in [
            (5, 8),
            (7, 8),
            (7, 34),
            (13, 40),
            (18, 3),
            (24, 9),
            (24, 16),
            (24, 41),
            (29, 40),
            (33, 22),
            (45, 4),
        ] {
            b.push(k, v);
        }
        b.finish()
    }

    #[test]
    fn figure1_example() {
        let r = figure1();
        assert_eq!(r.keys(), &[5, 7, 13, 18, 24, 29, 33, 45]);
        assert_eq!(r.num_triples(), 11);
        assert_eq!(r.values_for_key(5), &[8]);
        assert_eq!(r.values_for_key(7), &[8, 34]);
        assert_eq!(r.values_for_key(24), &[9, 16, 41]);
        assert_eq!(r.values_for_key(45), &[4]);
        assert_eq!(r.values_for_key(6), &[] as &[Id]);
        assert_eq!(r.check_invariants(), Ok(()));
    }

    #[test]
    fn unsorted_duplicated_input() {
        let mut b = ReplicaBuilder::new();
        for (k, v) in [(9, 1), (3, 2), (9, 1), (3, 1), (9, 0), (3, 2)] {
            b.push(k, v);
        }
        let r = b.finish();
        assert_eq!(r.keys(), &[3, 9]);
        assert_eq!(r.values_for_key(3), &[1, 2]);
        assert_eq!(r.values_for_key(9), &[0, 1]);
        assert_eq!(r.num_triples(), 4);
    }

    #[test]
    fn empty_replica() {
        let r = ReplicaBuilder::new().finish();
        assert_eq!(r.num_keys(), 0);
        assert_eq!(r.num_triples(), 0);
        assert!(r.is_empty());
        assert_eq!(r.values_for_key(0), &[] as &[Id]);
        assert_eq!(r.check_invariants(), Ok(()));
        assert_eq!(r.iter_pairs().count(), 0);
    }

    #[test]
    fn iter_pairs_roundtrip() {
        let r = figure1();
        let pairs: Vec<(Id, Id)> = r.iter_pairs().collect();
        assert_eq!(pairs.len(), 11);
        assert!(pairs.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(pairs[0], (5, 8));
        assert_eq!(pairs[10], (45, 4));
    }

    #[test]
    fn idpos_integration() {
        let mut r = figure1();
        r.build_idpos(64, 64);
        assert_eq!(r.check_invariants(), Ok(()));
        assert_eq!(r.values_for_key(24), &[9, 16, 41]);
        assert_eq!(r.values_for_key(25), &[] as &[Id]);
        r.drop_idpos();
        assert!(r.idpos().is_none());
    }

    #[test]
    fn group_len_matches_values() {
        let r = figure1();
        for i in 0..r.num_keys() {
            assert_eq!(r.group_len(i), r.values_at(i).len());
        }
    }

    #[test]
    fn raw_parts_roundtrip() {
        let r = figure1();
        let (k, o, v) = r.raw_parts();
        let back = Replica::from_raw_parts(k.to_vec(), o.to_vec(), v.to_vec()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn from_raw_rejects_corruption() {
        let r = figure1();
        let (k, o, v) = r.raw_parts();
        // Break key ordering.
        let mut bad_keys = k.to_vec();
        bad_keys.swap(0, 1);
        assert!(Replica::from_raw_parts(bad_keys, o.to_vec(), v.to_vec()).is_err());
        // Break offsets tail.
        let mut bad_off = o.to_vec();
        *bad_off.last_mut().unwrap() += 1;
        assert!(Replica::from_raw_parts(k.to_vec(), bad_off, v.to_vec()).is_err());
        // Break group sorting.
        let mut bad_vals = v.to_vec();
        bad_vals.swap(5, 6); // inside the 24-group
        assert!(Replica::from_raw_parts(k.to_vec(), o.to_vec(), bad_vals).is_err());
    }
}
