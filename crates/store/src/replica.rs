//! One sort-order replica of a property's two-column table (Figure 1 of
//! the paper): distinct sorted keys, a CSR offsets table, and one
//! contiguous sorted-per-group values area.
//!
//! The values area has two physical representations: raw `u32` arrays,
//! and the block-compressed encoding of [`crate::codec`] (selected by
//! [`Replica::compress`], kept only when it actually saves memory).
//! Keys and offsets always stay raw — the join layer's adaptive key
//! search runs on them unchanged — and every logical accessor is
//! representation-transparent through [`Group`].

use std::borrow::Cow;

use parj_dict::Id;

use crate::codec::{PackedRun, PackedRunIter, PackedValues};
use crate::idpos::IdPosIndex;

/// Physical storage of a replica's values area.
#[derive(Debug, Clone, PartialEq, Eq)]
enum ValuesRepr {
    /// Plain contiguous `u32` values (the seed representation).
    Raw(Vec<Id>),
    /// Block-compressed encoding (frame-of-reference + bitpacked
    /// deltas); see [`crate::codec`].
    Packed(PackedValues),
}

impl Default for ValuesRepr {
    fn default() -> Self {
        ValuesRepr::Raw(Vec::new())
    }
}

/// One key's sorted value group, borrowed from either representation.
///
/// Probes and scans go through this type so the executor, delta merges
/// and audits stay byte-identical whether the replica is compressed or
/// not.
#[derive(Debug, Clone, Copy)]
pub enum Group<'a> {
    /// Borrowed slice of a raw values area.
    Raw(&'a [Id]),
    /// Borrowed run of a block-compressed values area.
    Packed(PackedRun<'a>),
}

impl<'a> Group<'a> {
    /// Number of values in the group.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            Group::Raw(s) => s.len(),
            Group::Packed(r) => r.len(),
        }
    }

    /// True when the group holds no values.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The first (smallest) value, if any.
    pub fn first(&self) -> Option<Id> {
        match self {
            Group::Raw(s) => s.first().copied(),
            Group::Packed(r) => r.first(),
        }
    }

    /// Sorted membership probe: binary search on raw groups, skip-table
    /// block pick plus a decoded-block scan on packed ones.
    #[inline]
    pub fn contains(&self, v: Id) -> bool {
        match self {
            Group::Raw(s) => s.binary_search(&v).is_ok(),
            Group::Packed(r) => r.contains(v),
        }
    }

    /// Iterates the group's values in increasing order.
    pub fn iter(&self) -> GroupIter<'a> {
        match self {
            Group::Raw(s) => GroupIter::Raw(s.iter()),
            Group::Packed(r) => GroupIter::Packed(r.iter()),
        }
    }

    /// Appends the group's values, in order, to `out`.
    pub fn decode_into(&self, out: &mut Vec<Id>) {
        match self {
            Group::Raw(s) => out.extend_from_slice(s),
            Group::Packed(r) => r.decode_into(out),
        }
    }

    /// The group's values as an owned vector.
    pub fn to_vec(&self) -> Vec<Id> {
        let mut out = Vec::with_capacity(self.len());
        self.decode_into(&mut out);
        out
    }

    /// The borrowed slice when the group is raw (the common case for
    /// hot paths that want zero-copy access).
    #[inline]
    pub fn as_raw(&self) -> Option<&'a [Id]> {
        match self {
            Group::Raw(s) => Some(s),
            Group::Packed(_) => None,
        }
    }
}

impl<'a> IntoIterator for Group<'a> {
    type Item = Id;
    type IntoIter = GroupIter<'a>;

    fn into_iter(self) -> GroupIter<'a> {
        self.iter()
    }
}

/// Iterator over a [`Group`]'s values.
// The packed variant embeds its 128-value decode buffer; boxing it
// would trade one stack copy for a heap allocation per probed group.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum GroupIter<'a> {
    /// Raw-slice cursor.
    Raw(std::slice::Iter<'a, Id>),
    /// Block-buffered packed-run cursor.
    Packed(PackedRunIter<'a>),
}

impl Iterator for GroupIter<'_> {
    type Item = Id;

    #[inline]
    fn next(&mut self) -> Option<Id> {
        match self {
            GroupIter::Raw(it) => it.next().copied(),
            GroupIter::Packed(it) => it.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            GroupIter::Raw(it) => it.size_hint(),
            GroupIter::Packed(it) => it.size_hint(),
        }
    }
}

impl ExactSizeIterator for GroupIter<'_> {}

/// A single replica (S-O or O-S) of a property partition.
///
/// Invariants (checked by [`Replica::check_invariants`], relied on by the
/// join layer):
///
/// 1. `keys` is strictly increasing (distinct, sorted).
/// 2. `offsets.len() == keys.len() + 1`, `offsets[0] == 0`,
///    `offsets` is strictly increasing (every key has ≥ 1 value), and
///    `offsets[keys.len()] == values.len()`.
/// 3. Each group `values[offsets[i]..offsets[i+1]]` is strictly
///    increasing (values are distinct within a key: RDF graphs are sets).
///
/// Equality compares the *logical* content (keys, offsets, decoded
/// values, index) — a compressed replica equals its raw original.
#[derive(Debug, Clone, Default)]
pub struct Replica {
    keys: Vec<Id>,
    offsets: Vec<u32>,
    values: ValuesRepr,
    idpos: Option<IdPosIndex>,
}

impl PartialEq for Replica {
    fn eq(&self, other: &Self) -> bool {
        self.keys == other.keys
            && self.offsets == other.offsets
            && self.idpos == other.idpos
            && match (&self.values, &other.values) {
                (ValuesRepr::Raw(a), ValuesRepr::Raw(b)) => a == b,
                (ValuesRepr::Packed(a), ValuesRepr::Packed(b)) => a == b,
                _ => *self.decoded_values() == *other.decoded_values(),
            }
    }
}

impl Eq for Replica {}

impl Replica {
    /// The distinct, sorted first-column values.
    #[inline]
    pub fn keys(&self) -> &[Id] {
        &self.keys
    }

    /// Number of distinct keys.
    #[inline]
    pub fn num_keys(&self) -> usize {
        self.keys.len()
    }

    /// Number of `(key, value)` pairs, i.e. triples in this replica.
    #[inline]
    pub fn num_triples(&self) -> usize {
        match &self.values {
            ValuesRepr::Raw(v) => v.len(),
            ValuesRepr::Packed(p) => p.num_values(),
        }
    }

    /// True if the replica holds no triples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.num_triples() == 0
    }

    /// True when the values area is block-compressed.
    #[inline]
    pub fn is_compressed(&self) -> bool {
        matches!(self.values, ValuesRepr::Packed(_))
    }

    /// The sorted values group for the key at position `pos`, across
    /// either representation.
    ///
    /// # Panics
    /// Panics if `pos >= num_keys()`.
    #[inline]
    pub fn group_at(&self, pos: usize) -> Group<'_> {
        match &self.values {
            ValuesRepr::Raw(v) => {
                let start = self.offsets[pos] as usize;
                let end = self.offsets[pos + 1] as usize;
                Group::Raw(&v[start..end])
            }
            ValuesRepr::Packed(p) => Group::Packed(p.run(pos, &self.offsets)),
        }
    }

    /// The sorted values group for the key at position `pos`, as a raw
    /// slice. Valid only on uncompressed replicas — compressed-aware
    /// callers use [`Replica::group_at`].
    ///
    /// # Panics
    /// Panics if `pos >= num_keys()` or if the replica is compressed.
    #[inline]
    pub fn values_at(&self, pos: usize) -> &[Id] {
        let start = self.offsets[pos] as usize;
        let end = self.offsets[pos + 1] as usize;
        &self.raw_values()[start..end]
    }

    /// The key at position `pos`.
    #[inline]
    pub fn key_at(&self, pos: usize) -> Id {
        self.keys[pos]
    }

    /// Group size for the key at `pos` without touching the values array.
    #[inline]
    pub fn group_len(&self, pos: usize) -> usize {
        (self.offsets[pos + 1] - self.offsets[pos]) as usize
    }

    /// The raw CSR offsets table (`num_keys() + 1` entries).
    #[inline]
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// The contiguous values area of an uncompressed replica.
    /// Compressed-aware callers use [`Replica::decoded_values`] or
    /// per-group access.
    ///
    /// # Panics
    /// Panics if the replica is compressed.
    #[inline]
    pub fn values(&self) -> &[Id] {
        self.raw_values()
    }

    fn raw_values(&self) -> &[Id] {
        match &self.values {
            ValuesRepr::Raw(v) => v,
            ValuesRepr::Packed(_) =>

                panic!("replica is block-compressed; use group_at()/decoded_values()"),
        }
    }

    /// The full values area, decoding when compressed (borrowed when
    /// raw).
    pub fn decoded_values(&self) -> Cow<'_, [Id]> {
        match &self.values {
            ValuesRepr::Raw(v) => Cow::Borrowed(v),
            ValuesRepr::Packed(p) => {
                let mut out = Vec::with_capacity(p.num_values());
                p.decode_all(&self.offsets, &mut out);
                Cow::Owned(out)
            }
        }
    }

    /// Plain binary search for `key` over the whole keys array.
    #[inline]
    pub fn find_key(&self, key: Id) -> Option<usize> {
        self.keys.binary_search(&key).ok()
    }

    /// Position of `key`, using the ID-to-Position index when present.
    #[inline]
    pub fn position_of(&self, key: Id) -> Option<usize> {
        match &self.idpos {
            Some(idx) => idx.lookup(key),
            None => self.find_key(key),
        }
    }

    /// The values group for `key`, empty if absent (uses the
    /// ID-to-Position index when present). Valid only on uncompressed
    /// replicas — compressed-aware callers use
    /// [`Replica::group_for_key`].
    pub fn values_for_key(&self, key: Id) -> &[Id] {
        match self.position_of(key) {
            Some(p) => self.values_at(p),
            None => &[],
        }
    }

    /// The values group for `key` across either representation, empty
    /// if absent.
    pub fn group_for_key(&self, key: Id) -> Group<'_> {
        match self.position_of(key) {
            Some(p) => self.group_at(p),
            None => Group::Raw(&[]),
        }
    }

    /// The ID-to-Position index, if built.
    #[inline]
    pub fn idpos(&self) -> Option<&IdPosIndex> {
        self.idpos.as_ref()
    }

    /// Builds (or rebuilds) the ID-to-Position index over `universe`
    /// dictionary ids with the given block interval.
    pub fn build_idpos(&mut self, universe: usize, interval: usize) {
        self.idpos = Some(IdPosIndex::build(&self.keys, universe, interval));
    }

    /// Drops the ID-to-Position index (the paper notes the index is
    /// auxiliary: "our system can operate without all or some of these
    /// indexes").
    pub fn drop_idpos(&mut self) {
        self.idpos = None;
    }

    /// Block-compresses the values area when the replica holds at least
    /// `min_values` triples **and** the packed encoding is actually
    /// smaller than the raw one. Returns whether the replica is
    /// compressed afterwards. Idempotent.
    pub fn compress(&mut self, min_values: usize) -> bool {
        let ValuesRepr::Raw(v) = &self.values else {
            return true;
        };
        if v.len() < min_values.max(1) {
            return false;
        }
        let packed = PackedValues::pack(&self.offsets, v);
        if packed.memory_bytes() >= v.len() * std::mem::size_of::<Id>() {
            return false;
        }
        self.values = ValuesRepr::Packed(packed);
        true
    }

    /// Restores the raw representation (no-op when already raw).
    pub fn decompress(&mut self) {
        if let ValuesRepr::Packed(_) = &self.values {
            let owned = self.decoded_values().into_owned();
            self.values = ValuesRepr::Raw(owned);
        }
    }

    /// Iterates `(key, values_group)` pairs in key order. Valid only on
    /// uncompressed replicas (used by the baseline engines, which run
    /// on raw stores); compressed-aware callers pair
    /// [`Replica::keys`] with [`Replica::group_at`].
    pub fn iter_groups(&self) -> impl Iterator<Item = (Id, &[Id])> + '_ {
        (0..self.num_keys()).map(move |i| (self.keys[i], self.values_at(i)))
    }

    /// Iterates all `(key, value)` pairs in `(key, value)` order,
    /// across either representation.
    pub fn iter_pairs(&self) -> impl Iterator<Item = (Id, Id)> + '_ {
        (0..self.num_keys()).flat_map(move |i| {
            let k = self.keys[i];
            self.group_at(i).iter().map(move |v| (k, v))
        })
    }

    /// Bytes used by the arrays (excluding the optional index); the
    /// values contribution reflects the physical representation, so
    /// compressing shrinks this number.
    pub fn memory_bytes(&self) -> usize {
        let values = match &self.values {
            ValuesRepr::Raw(v) => v.len() * std::mem::size_of::<Id>(),
            ValuesRepr::Packed(p) => p.memory_bytes(),
        };
        self.keys.len() * std::mem::size_of::<Id>()
            + self.offsets.len() * 4
            + values
            + self.idpos.as_ref().map_or(0, |i| i.memory_bytes())
    }

    /// Bytes used by the values area alone (the part compression
    /// targets), in its physical representation.
    pub fn value_bytes(&self) -> usize {
        match &self.values {
            ValuesRepr::Raw(v) => v.len() * std::mem::size_of::<Id>(),
            ValuesRepr::Packed(p) => p.memory_bytes(),
        }
    }

    /// Verifies all structural invariants; returns a description of the
    /// first violation. Used by tests and the snapshot loader. On a
    /// compressed replica this decodes and checks every group, so it
    /// also proves the codec round-trips this replica.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.offsets.len() != self.keys.len() + 1 {
            return Err(format!(
                "offsets len {} != keys len {} + 1",
                self.offsets.len(),
                self.keys.len()
            ));
        }
        if self.offsets.first() != Some(&0) {
            return Err("offsets[0] != 0".into());
        }
        if *self.offsets.last().expect("non-empty offsets") as usize != self.num_triples() {
            return Err("offsets tail != values len".into());
        }
        for w in self.keys.windows(2) {
            if w[0] >= w[1] {
                return Err(format!("keys not strictly increasing at {}..{}", w[0], w[1]));
            }
        }
        for w in self.offsets.windows(2) {
            if w[0] >= w[1] {
                return Err("empty value group (offsets not strictly increasing)".into());
            }
        }
        for i in 0..self.num_keys() {
            let g = self.group_at(i);
            let mut n = 0usize;
            let mut prev: Option<Id> = None;
            for v in g.iter() {
                if let Some(p) = prev {
                    if p >= v {
                        return Err(format!("group {i} not strictly increasing"));
                    }
                }
                if !g.contains(v) {
                    return Err(format!("group {i} probe misses its own value {v}"));
                }
                prev = Some(v);
                n += 1;
            }
            if n != self.group_len(i) {
                return Err(format!(
                    "group {i} decodes {n} values, offsets promise {}",
                    self.group_len(i)
                ));
            }
        }
        if let Some(idx) = &self.idpos {
            for (pos, &k) in self.keys.iter().enumerate() {
                if idx.lookup(k) != Some(pos) {
                    return Err(format!("idpos lookup({k}) != {pos}"));
                }
            }
        }
        Ok(())
    }

    /// Raw parts for snapshot encoding: keys, offsets, and the decoded
    /// values area (snapshots always store the raw representation, so
    /// their bytes are independent of the in-memory one).
    pub(crate) fn raw_parts(&self) -> (&[Id], &[u32], Cow<'_, [Id]>) {
        (&self.keys, &self.offsets, self.decoded_values())
    }

    /// Rebuilds from raw parts, validating invariants.
    pub(crate) fn from_raw_parts(
        keys: Vec<Id>,
        offsets: Vec<u32>,
        values: Vec<Id>,
    ) -> Result<Self, String> {
        let r = Replica {
            keys,
            offsets,
            values: ValuesRepr::Raw(values),
            idpos: None,
        };
        r.check_invariants()?;
        Ok(r)
    }
}

/// Builds a [`Replica`] from `(first, second)` column pairs.
///
/// The input need not be sorted or deduplicated; `finish` sorts,
/// deduplicates (RDF set semantics) and emits the CSR arrays.
#[derive(Debug, Default)]
pub struct ReplicaBuilder {
    pairs: Vec<(Id, Id)>,
}

impl ReplicaBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder with capacity for `n` pairs.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            pairs: Vec::with_capacity(n),
        }
    }

    /// Adds one `(key, value)` pair.
    #[inline]
    pub fn push(&mut self, key: Id, value: Id) {
        self.pairs.push((key, value));
    }

    /// Number of buffered pairs (before dedup).
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True if no pairs buffered.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Sorts, deduplicates and emits the replica.
    pub fn finish(mut self) -> Replica {
        self.pairs.sort_unstable();
        self.pairs.dedup();
        Self::from_sorted_unique(self.pairs)
    }

    /// Builds directly from pairs already sorted and deduplicated
    /// (debug-asserted).
    pub fn from_sorted_unique(pairs: Vec<(Id, Id)>) -> Replica {
        debug_assert!(pairs.windows(2).all(|w| w[0] < w[1]), "pairs not sorted+unique");
        assert!(
            pairs.len() <= u32::MAX as usize,
            "replica exceeds u32 offset range ({} pairs)",
            pairs.len()
        );
        let mut keys: Vec<Id> = Vec::new();
        let mut offsets: Vec<u32> = vec![0];
        let mut values: Vec<Id> = Vec::with_capacity(pairs.len());
        for (k, v) in pairs {
            if keys.last() != Some(&k) {
                if !keys.is_empty() {
                    offsets.push(values.len() as u32);
                }
                keys.push(k);
            }
            values.push(v);
        }
        offsets.push(values.len() as u32);
        if keys.is_empty() {
            // Canonical empty replica: offsets = [0].
            offsets = vec![0];
        }
        let r = Replica {
            keys,
            offsets,
            values: ValuesRepr::Raw(values),
            idpos: None,
        };
        debug_assert_eq!(r.check_invariants(), Ok(()));
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The exact example of Figure 1: property table containing triples
    /// 5-8, 7-8, 7-34, 13-40, 18-3, 24-9, 24-16, 24-41, 29-40, 33-22,
    /// 45-4 (keys 5,7,13,18,24,29,33,45).
    fn figure1() -> Replica {
        let mut b = ReplicaBuilder::new();
        for (k, v) in [
            (5, 8),
            (7, 8),
            (7, 34),
            (13, 40),
            (18, 3),
            (24, 9),
            (24, 16),
            (24, 41),
            (29, 40),
            (33, 22),
            (45, 4),
        ] {
            b.push(k, v);
        }
        b.finish()
    }

    #[test]
    fn figure1_example() {
        let r = figure1();
        assert_eq!(r.keys(), &[5, 7, 13, 18, 24, 29, 33, 45]);
        assert_eq!(r.num_triples(), 11);
        assert_eq!(r.values_for_key(5), &[8]);
        assert_eq!(r.values_for_key(7), &[8, 34]);
        assert_eq!(r.values_for_key(24), &[9, 16, 41]);
        assert_eq!(r.values_for_key(45), &[4]);
        assert_eq!(r.values_for_key(6), &[] as &[Id]);
        assert_eq!(r.check_invariants(), Ok(()));
    }

    #[test]
    fn unsorted_duplicated_input() {
        let mut b = ReplicaBuilder::new();
        for (k, v) in [(9, 1), (3, 2), (9, 1), (3, 1), (9, 0), (3, 2)] {
            b.push(k, v);
        }
        let r = b.finish();
        assert_eq!(r.keys(), &[3, 9]);
        assert_eq!(r.values_for_key(3), &[1, 2]);
        assert_eq!(r.values_for_key(9), &[0, 1]);
        assert_eq!(r.num_triples(), 4);
    }

    #[test]
    fn empty_replica() {
        let r = ReplicaBuilder::new().finish();
        assert_eq!(r.num_keys(), 0);
        assert_eq!(r.num_triples(), 0);
        assert!(r.is_empty());
        assert_eq!(r.values_for_key(0), &[] as &[Id]);
        assert_eq!(r.check_invariants(), Ok(()));
        assert_eq!(r.iter_pairs().count(), 0);
    }

    #[test]
    fn iter_pairs_roundtrip() {
        let r = figure1();
        let pairs: Vec<(Id, Id)> = r.iter_pairs().collect();
        assert_eq!(pairs.len(), 11);
        assert!(pairs.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(pairs[0], (5, 8));
        assert_eq!(pairs[10], (45, 4));
    }

    #[test]
    fn idpos_integration() {
        let mut r = figure1();
        r.build_idpos(64, 64);
        assert_eq!(r.check_invariants(), Ok(()));
        assert_eq!(r.values_for_key(24), &[9, 16, 41]);
        assert_eq!(r.values_for_key(25), &[] as &[Id]);
        r.drop_idpos();
        assert!(r.idpos().is_none());
    }

    #[test]
    fn group_len_matches_values() {
        let r = figure1();
        for i in 0..r.num_keys() {
            assert_eq!(r.group_len(i), r.values_at(i).len());
            assert_eq!(r.group_len(i), r.group_at(i).len());
        }
    }

    #[test]
    fn raw_parts_roundtrip() {
        let r = figure1();
        let (k, o, v) = r.raw_parts();
        let back = Replica::from_raw_parts(k.to_vec(), o.to_vec(), v.to_vec()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn from_raw_rejects_corruption() {
        let r = figure1();
        let (k, o, v) = r.raw_parts();
        // Break key ordering.
        let mut bad_keys = k.to_vec();
        bad_keys.swap(0, 1);
        assert!(Replica::from_raw_parts(bad_keys, o.to_vec(), v.to_vec()).is_err());
        // Break offsets tail.
        let mut bad_off = o.to_vec();
        *bad_off.last_mut().unwrap() += 1;
        assert!(Replica::from_raw_parts(k.to_vec(), bad_off, v.to_vec()).is_err());
        // Break group sorting.
        let mut bad_vals = v.to_vec();
        bad_vals.swap(5, 6); // inside the 24-group
        assert!(Replica::from_raw_parts(k.to_vec(), o.to_vec(), bad_vals).is_err());
    }

    /// A replica big enough to clear any sensible compression threshold,
    /// with runs long enough to span multiple blocks.
    fn large() -> Replica {
        let mut b = ReplicaBuilder::new();
        for k in 0..40u32 {
            // Run length varies: key k has 1 + (k*37 % 400) values.
            for j in 0..1 + (k * 37) % 400 {
                b.push(k, j * (1 + k % 3) + 7);
            }
        }
        b.finish()
    }

    #[test]
    fn compression_preserves_logical_content() {
        let raw = large();
        let mut zip = raw.clone();
        assert!(zip.compress(1), "large replica must compress");
        assert!(zip.is_compressed());
        assert_eq!(zip.check_invariants(), Ok(()));
        assert_eq!(zip.num_triples(), raw.num_triples());
        // Logical equality across representations.
        assert_eq!(zip, raw);
        assert_eq!(
            zip.iter_pairs().collect::<Vec<_>>(),
            raw.iter_pairs().collect::<Vec<_>>()
        );
        for pos in 0..raw.num_keys() {
            assert_eq!(zip.group_at(pos).to_vec(), raw.values_at(pos));
            for v in raw.values_at(pos) {
                assert!(zip.group_at(pos).contains(*v));
            }
            assert!(!zip.group_at(pos).contains(1_000_000));
        }
        // Compression must actually shrink the values area.
        assert!(zip.value_bytes() < raw.value_bytes(), "{} vs {}", zip.value_bytes(), raw.value_bytes());
        // Snapshot parts stay byte-identical to the raw replica's.
        assert_eq!(zip.raw_parts().2, raw.raw_parts().2);
        // And decompression restores the original representation.
        zip.decompress();
        assert!(!zip.is_compressed());
        assert_eq!(zip.values(), raw.values());
    }

    #[test]
    fn compression_threshold_and_idempotence() {
        let mut r = figure1();
        assert!(!r.compress(1000), "small replica stays raw");
        assert!(!r.is_compressed());
        let mut big = large();
        assert!(big.compress(1));
        assert!(big.compress(1), "compress is idempotent");
        assert!(big.compress(usize::MAX), "already-compressed stays compressed");
    }

    #[test]
    fn group_for_key_across_representations() {
        let raw = large();
        let mut zip = raw.clone();
        zip.compress(1);
        for &k in raw.keys() {
            assert_eq!(zip.group_for_key(k).to_vec(), raw.values_for_key(k));
        }
        assert!(zip.group_for_key(10_000).is_empty());
        // With an idpos index on top.
        zip.build_idpos(64, 64);
        assert_eq!(zip.check_invariants(), Ok(()));
        assert_eq!(zip.group_for_key(11).to_vec(), raw.values_for_key(11));
    }

    #[test]
    #[should_panic(expected = "block-compressed")]
    fn raw_accessor_panics_on_compressed() {
        let mut r = large();
        r.compress(1);
        let _ = r.values_at(0);
    }
}
