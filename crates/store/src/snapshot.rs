//! Binary snapshot persistence for a [`TripleStore`].
//!
//! The paper's prototype used SQLite tables as the disk backing, rebuilt
//! into in-memory arrays at start-up (§5). That layer is orthogonal to
//! everything the paper measures, so this reproduction persists the
//! already-built arrays directly in a compact, versioned little-endian
//! format; loading is a validated bulk read (plus an ID-to-Position
//! rebuild, which is a linear scan).

use std::io::{Read, Write};
use std::path::Path;

use bytes::{Buf, BufMut};
use parj_dict::{Dictionary, Id};

use crate::partition::Partition;
use crate::replica::Replica;
use crate::store::{SortOrder, StoreOptions, TripleStore};

/// Magic bytes at the start of every snapshot.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"PARJSNAP";
/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Errors from encoding/decoding snapshots.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Missing/incorrect magic bytes.
    BadMagic,
    /// Snapshot written by an unsupported format version.
    BadVersion(u32),
    /// Payload ended early.
    Truncated,
    /// Structural validation failed while rebuilding.
    Corrupt(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::BadMagic => write!(f, "not a PARJ snapshot (bad magic)"),
            SnapshotError::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::Corrupt(what) => write!(f, "snapshot corrupt: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

fn put_ids(out: &mut Vec<u8>, ids: &[Id]) {
    out.put_u64_le(ids.len() as u64);
    for &i in ids {
        out.put_u32_le(i);
    }
}

fn put_u32s(out: &mut Vec<u8>, xs: &[u32]) {
    out.put_u64_le(xs.len() as u64);
    for &x in xs {
        out.put_u32_le(x);
    }
}

fn get_u32s(buf: &mut &[u8]) -> Result<Vec<u32>, SnapshotError> {
    if buf.remaining() < 8 {
        return Err(SnapshotError::Truncated);
    }
    let n = buf.get_u64_le() as usize;
    if buf.remaining() < n.saturating_mul(4) {
        return Err(SnapshotError::Truncated);
    }
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        v.push(buf.get_u32_le());
    }
    Ok(v)
}

impl TripleStore {
    /// Serializes the whole store (dictionary + all partitions) into a
    /// byte vector.
    pub fn to_snapshot_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.partitions_memory_bytes());
        out.put_slice(SNAPSHOT_MAGIC);
        out.put_u32_le(SNAPSHOT_VERSION);
        self.dict().encode_into(&mut out);
        let opts = self.options();
        out.put_u8(opts.build_idpos as u8);
        out.put_u64_le(opts.idpos_interval as u64);
        out.put_u32_le(self.partitions().len() as u32);
        for part in self.partitions() {
            out.put_u32_le(part.predicate());
            for order in [SortOrder::SO, SortOrder::OS] {
                let (keys, offsets, values) = part.replica(order).raw_parts();
                put_ids(&mut out, keys);
                put_u32s(&mut out, offsets);
                // `values` is Cow: borrowed when raw, decoded when the
                // replica is block-compressed — snapshot bytes stay
                // representation-independent (format v1 unchanged).
                put_ids(&mut out, &values);
            }
        }
        out
    }

    /// Reconstructs a store from snapshot bytes, validating structure
    /// and rebuilding ID-to-Position indexes when the snapshot's options
    /// request them.
    pub fn from_snapshot_bytes(mut buf: &[u8]) -> Result<Self, SnapshotError> {
        let buf = &mut buf;
        if buf.remaining() < 12 {
            return Err(SnapshotError::Truncated);
        }
        let mut magic = [0u8; 8];
        buf.copy_to_slice(&mut magic);
        if &magic != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = buf.get_u32_le();
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::BadVersion(version));
        }
        let dict = Dictionary::decode_from(buf)
            .map_err(|e| SnapshotError::Corrupt(format!("dictionary: {e}")))?;
        if buf.remaining() < 1 + 8 + 4 {
            return Err(SnapshotError::Truncated);
        }
        let build_idpos = buf.get_u8() != 0;
        let idpos_interval = buf.get_u64_le() as usize;
        // A corrupt interval would assert inside `IdPosIndex::build`;
        // reject it here so hostile bytes surface as `Err`, not a panic.
        if build_idpos && (idpos_interval == 0 || !idpos_interval.is_multiple_of(64)) {
            return Err(SnapshotError::Corrupt(format!(
                "idpos interval {idpos_interval} is not a positive multiple of 64"
            )));
        }
        let n_parts = buf.get_u32_le() as usize;
        if n_parts != dict.num_predicates() {
            return Err(SnapshotError::Corrupt(format!(
                "{n_parts} partitions but {} predicates",
                dict.num_predicates()
            )));
        }
        let universe = dict.num_resources();
        let mut partitions = Vec::with_capacity(n_parts);
        for idx in 0..n_parts {
            if buf.remaining() < 4 {
                return Err(SnapshotError::Truncated);
            }
            let predicate = buf.get_u32_le();
            if predicate as usize != idx {
                return Err(SnapshotError::Corrupt(format!(
                    "partition {idx} stores predicate {predicate}"
                )));
            }
            let mut replicas = Vec::with_capacity(2);
            for order in [SortOrder::SO, SortOrder::OS] {
                let keys = get_u32s(buf)?;
                let offsets = get_u32s(buf)?;
                let values = get_u32s(buf)?;
                let mut r = Replica::from_raw_parts(keys, offsets, values)
                    .map_err(|e| SnapshotError::Corrupt(format!("pred {predicate} {order}: {e}")))?;
                if build_idpos {
                    // Out-of-universe keys would assert inside
                    // `IdPosIndex::build`; keys are sorted, so checking
                    // the last one suffices.
                    if let Some(&k) = r.keys().last() {
                        if k as usize >= universe {
                            return Err(SnapshotError::Corrupt(format!(
                                "pred {predicate} {order}: key {k} outside id universe {universe}"
                            )));
                        }
                    }
                    r.build_idpos(universe, idpos_interval);
                }
                replicas.push(r);
            }
            let os = replicas.pop().expect("two replicas");
            let so = replicas.pop().expect("two replicas");
            // Loading validates each replica structurally (linear cost,
            // and required so nothing downstream can panic) plus this
            // cardinality agreement. The deep cross-replica checks —
            // SO/OS triple-multiset equality, id ranges against the
            // dictionary — cost O(n log n) and live in `parj-audit`
            // (`parj audit` on the CLI) instead of taxing every load.
            if so.num_triples() != os.num_triples() {
                return Err(SnapshotError::Corrupt(format!(
                    "pred {predicate}: replica cardinality mismatch: SO={} OS={}",
                    so.num_triples(),
                    os.num_triples()
                )));
            }
            partitions.push(Partition::from_replicas(predicate, so, os));
        }
        Ok(TripleStore::from_parts(
            dict,
            partitions,
            StoreOptions {
                build_idpos,
                idpos_interval,
                ..StoreOptions::default()
            },
        ))
    }

    /// Writes a snapshot to `path`.
    pub fn save_snapshot(&self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        let bytes = self.to_snapshot_bytes();
        let mut f = std::fs::File::create(path)?;
        f.write_all(&bytes)?;
        Ok(())
    }

    /// Loads a snapshot from `path`.
    pub fn load_snapshot(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        let mut bytes = Vec::new();
        std::fs::File::open(path)?.read_to_end(&mut bytes)?;
        Self::from_snapshot_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreBuilder;
    use parj_dict::Term;

    fn sample_store() -> TripleStore {
        let mut b = StoreBuilder::new();
        for i in 0..50u32 {
            b.add_term_triple(
                &Term::iri(format!("http://e/s{}", i % 17)),
                &Term::iri(format!("http://e/p{}", i % 3)),
                &Term::iri(format!("http://e/o{i}")),
            );
            b.add_term_triple(
                &Term::iri(format!("http://e/s{}", i % 17)),
                &Term::iri("http://e/name"),
                &Term::lang_literal(format!("name {i}"), "en"),
            );
        }
        b.build()
    }

    #[test]
    fn roundtrip_bytes() {
        let store = sample_store();
        let bytes = store.to_snapshot_bytes();
        let back = TripleStore::from_snapshot_bytes(&bytes).unwrap();
        assert_eq!(back.num_triples(), store.num_triples());
        assert_eq!(back.num_predicates(), store.num_predicates());
        assert_eq!(back.check_invariants(), Ok(()));
        let a: Vec<_> = store.iter_triples().collect();
        let b: Vec<_> = back.iter_triples().collect();
        assert_eq!(a, b);
        // Dictionary survives: decode matches.
        assert_eq!(
            back.dict().decode_resource(0).unwrap(),
            store.dict().decode_resource(0).unwrap()
        );
        // Indexes rebuilt per options.
        assert!(back.replica(0, SortOrder::SO).unwrap().idpos().is_some());
    }

    #[test]
    fn roundtrip_through_file() {
        let store = sample_store();
        let dir = std::env::temp_dir().join(format!("parj-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.parj");
        store.save_snapshot(&path).unwrap();
        let back = TripleStore::load_snapshot(&path).unwrap();
        assert_eq!(back.num_triples(), store.num_triples());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let store = sample_store();
        let mut bytes = store.to_snapshot_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            TripleStore::from_snapshot_bytes(&bytes),
            Err(SnapshotError::BadMagic)
        ));
        let mut bytes = store.to_snapshot_bytes();
        bytes[8] = 99;
        assert!(matches!(
            TripleStore::from_snapshot_bytes(&bytes),
            Err(SnapshotError::BadVersion(_))
        ));
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let store = sample_store();
        let bytes = store.to_snapshot_bytes();
        // Cut at a spread of positions; all must fail, none may panic.
        for frac in 1..20 {
            let cut = bytes.len() * frac / 20;
            assert!(
                TripleStore::from_snapshot_bytes(&bytes[..cut]).is_err(),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn empty_store_roundtrip() {
        let store = StoreBuilder::new().build();
        let bytes = store.to_snapshot_bytes();
        let back = TripleStore::from_snapshot_bytes(&bytes).unwrap();
        assert_eq!(back.num_triples(), 0);
    }
}
