//! The top-level triple store: dictionary + one partition per predicate.

use parj_dict::{Dictionary, EncodedTriple, Id, Term};

use crate::partition::Partition;
use crate::replica::Replica;

/// Which replica of a partition: S-O (sorted subject-then-object, the
/// paper's `prop_i`) or O-S (`prop_i'`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SortOrder {
    /// Keys are subjects, values are objects.
    SO,
    /// Keys are objects, values are subjects.
    OS,
}

impl SortOrder {
    /// The other order.
    #[inline]
    pub fn flip(self) -> SortOrder {
        match self {
            SortOrder::SO => SortOrder::OS,
            SortOrder::OS => SortOrder::SO,
        }
    }
}

impl std::fmt::Display for SortOrder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SortOrder::SO => "S-O",
            SortOrder::OS => "O-S",
        })
    }
}

/// Build-time options for [`StoreBuilder::build_with`].
#[derive(Debug, Clone, Copy)]
pub struct StoreOptions {
    /// Build ID-to-Position indexes on every replica (§4.2). The paper
    /// treats them as auxiliary; PARJ runs with or without them.
    pub build_idpos: bool,
    /// Block interval for the ID-to-Position index; must be a multiple
    /// of 64. The paper used 480 with byte-granular counting; we use 512
    /// for word alignment (same space regime: ~1.06 bits per id).
    pub idpos_interval: usize,
    /// Threads used to sort/build partitions (vertical partitioning is
    /// embarrassingly parallel across predicates; output is identical
    /// at any thread count). Default: available parallelism.
    pub build_threads: usize,
    /// When `Some(n)`, block-compress each replica's values area
    /// ([`crate::codec`]) once it holds at least `n` triples and the
    /// packed form is smaller than raw. `None` (the default) keeps all
    /// replicas raw; the engine layer opts in via
    /// `EngineConfig::compress_replicas`.
    pub compress_min_values: Option<usize>,
}

impl Default for StoreOptions {
    fn default() -> Self {
        Self {
            build_idpos: true,
            idpos_interval: 512,
            build_threads: parj_sync::thread::available_parallelism().map_or(1, |n| n.get()),
            compress_min_values: None,
        }
    }
}

/// Accumulates encoded triples and builds a [`TripleStore`].
#[derive(Debug, Default)]
pub struct StoreBuilder {
    dict: Dictionary,
    /// Pairs grouped by predicate id (dense).
    by_pred: Vec<Vec<(Id, Id)>>,
}

impl StoreBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Encodes and adds one term triple.
    pub fn add_term_triple(&mut self, s: &Term, p: &Term, o: &Term) -> EncodedTriple {
        let s = self.dict.encode_resource(s);
        let p = self.dict.encode_predicate(p);
        let o = self.dict.encode_resource(o);
        self.add_encoded(EncodedTriple::new(s, p, o));
        EncodedTriple::new(s, p, o)
    }

    /// Split borrow for the parallel staging path (`parallel.rs`):
    /// phase 1 reads the dictionary while phase 3 fills `by_pred`.
    pub(crate) fn parts_mut(&mut self) -> (&mut Dictionary, &mut Vec<Vec<(Id, Id)>>) {
        (&mut self.dict, &mut self.by_pred)
    }

    /// Adds an already-encoded triple. The predicate id must have been
    /// produced by this builder's dictionary.
    pub fn add_encoded(&mut self, t: EncodedTriple) {
        let p = t.p as usize;
        if self.by_pred.len() <= p {
            self.by_pred.resize_with(p + 1, Vec::new);
        }
        self.by_pred[p].push((t.s, t.o));
    }

    /// Access to the dictionary being built (for callers that encode
    /// terms themselves, e.g. the data generators).
    pub fn dict_mut(&mut self) -> &mut Dictionary {
        &mut self.dict
    }

    /// Read access to the dictionary being built.
    pub fn dict(&self) -> &Dictionary {
        &self.dict
    }

    /// Number of buffered (pre-dedup) triples.
    pub fn len(&self) -> usize {
        self.by_pred.iter().map(Vec::len).sum()
    }

    /// True if no triples were added.
    pub fn is_empty(&self) -> bool {
        self.by_pred.iter().all(Vec::is_empty)
    }

    /// Builds the store with default options.
    pub fn build(self) -> TripleStore {
        self.build_with(StoreOptions::default())
    }

    /// Builds the store. Partition construction (sort + CSR + optional
    /// ID-to-Position index, per predicate) runs on
    /// [`StoreOptions::build_threads`] workers; the result is identical
    /// at any thread count.
    pub fn build_with(self, options: StoreOptions) -> TripleStore {
        let universe = self.dict.num_resources();
        let n_preds = self.dict.num_predicates();
        let mut by_pred = self.by_pred;
        by_pred.resize_with(n_preds, Vec::new);

        let build_one = |pred: usize, pairs: &[(Id, Id)]| -> Partition {
            let mut part = Partition::build(pred as Id, pairs);
            if options.build_idpos {
                for order in [SortOrder::SO, SortOrder::OS] {
                    part.replica_mut(order)
                        .build_idpos(universe, options.idpos_interval);
                }
            }
            if let Some(min) = options.compress_min_values {
                part.compress_values(min);
            }
            part
        };

        let threads = options.build_threads.max(1).min(n_preds.max(1));
        let partitions: Vec<Partition> = if threads <= 1 || n_preds <= 1 {
            by_pred
                .iter()
                .enumerate()
                .map(|(pred, pairs)| build_one(pred, pairs))
                .collect()
        } else {
            // Workers draw predicate indexes from one atomic counter —
            // the same dependency-free pattern as query execution.
            let next = parj_sync::atomic::AtomicUsize::new(0);
            let mut slots: Vec<Option<Partition>> = Vec::new();
            slots.resize_with(n_preds, || None);
            let slot_ptrs: Vec<parj_sync::OrderedMutex<&mut Option<Partition>>> = slots
                .iter_mut()
                .map(|s| {
                    parj_sync::OrderedMutex::new(
                        parj_sync::LockLevel::Staging,
                        "staging.partition_slot",
                        s,
                    )
                })
                .collect();
            parj_sync::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(|| loop {
                        // ordering: Relaxed — predicate ticket only;
                        // partitions are published through slot Mutexes
                        // and the scope join edge (loom_parallel model).
                        let pred = next
                            .fetch_add(1, parj_sync::atomic::Ordering::Relaxed);
                        if pred >= n_preds {
                            break;
                        }
                        let part = build_one(pred, &by_pred[pred]);
                        **slot_ptrs[pred].lock() = Some(part);
                    });
                }
            });
            drop(slot_ptrs);
            slots
                .into_iter()
                .map(|s| s.expect("every predicate built"))
                .collect()
        };

        let num_triples = partitions.iter().map(Partition::num_triples).sum();
        TripleStore {
            dict: self.dict,
            partitions,
            num_triples,
            options,
        }
    }
}

/// The complete in-memory RDF store: the paper's physical design of §3.
///
/// Immutable after build — PARJ's execution model relies on workers
/// sharing the store read-only with no synchronization; updates go
/// through rebuilding (or the engine's copy-on-write wrapper).
#[derive(Debug)]
pub struct TripleStore {
    dict: Dictionary,
    /// Indexed by predicate id; every predicate in the dictionary has a
    /// partition (possibly empty).
    partitions: Vec<Partition>,
    num_triples: usize,
    options: StoreOptions,
}

impl TripleStore {
    /// The dictionary.
    #[inline]
    pub fn dict(&self) -> &Dictionary {
        &self.dict
    }

    /// Total distinct triples stored.
    #[inline]
    pub fn num_triples(&self) -> usize {
        self.num_triples
    }

    /// Number of predicates (== number of partitions).
    #[inline]
    pub fn num_predicates(&self) -> usize {
        self.partitions.len()
    }

    /// The partition for `predicate`, or `None` if the id is out of
    /// range.
    #[inline]
    pub fn partition(&self, predicate: Id) -> Option<&Partition> {
        self.partitions.get(predicate as usize)
    }

    /// The replica for `predicate` in the given order.
    #[inline]
    pub fn replica(&self, predicate: Id, order: SortOrder) -> Option<&Replica> {
        self.partition(predicate).map(|p| p.replica(order))
    }

    /// All partitions, indexed by predicate id.
    #[inline]
    pub fn partitions(&self) -> &[Partition] {
        &self.partitions
    }

    /// Build options that produced this store.
    #[inline]
    pub fn options(&self) -> StoreOptions {
        self.options
    }

    /// True if the fully-constant triple exists.
    pub fn contains(&self, t: EncodedTriple) -> bool {
        self.partition(t.p).is_some_and(|p| p.contains(t.s, t.o))
    }

    /// Iterates every stored triple (predicate-major, then (s,o) order).
    /// Intended for tests and export, not the query path.
    pub fn iter_triples(&self) -> impl Iterator<Item = EncodedTriple> + '_ {
        self.partitions.iter().flat_map(|part| {
            part.iter_so()
                .map(move |(s, o)| EncodedTriple::new(s, part.predicate(), o))
        })
    }

    /// Total bytes of the partition arrays (the paper reports e.g. 22 GB
    /// for LUBM 10240 excluding dictionary).
    pub fn partitions_memory_bytes(&self) -> usize {
        self.partitions.iter().map(Partition::memory_bytes).sum()
    }

    /// Total bytes including the dictionary (paper: 50 GB with
    /// dictionary for LUBM 10240).
    pub fn total_memory_bytes(&self) -> usize {
        self.partitions_memory_bytes() + self.dict.memory_bytes()
    }

    /// Block-compresses every replica holding at least `min_values`
    /// triples (where the packed form actually saves memory), and
    /// records the policy in [`StoreOptions::compress_min_values`] so
    /// delta compaction re-applies it to replacement partitions.
    /// Returns the number of replicas now compressed.
    pub fn compress_values(&mut self, min_values: usize) -> usize {
        self.options.compress_min_values = Some(min_values);
        let mut n = 0;
        for part in &mut self.partitions {
            for order in [SortOrder::SO, SortOrder::OS] {
                let r = part.replica_mut(order);
                if r.compress(min_values) {
                    n += 1;
                }
            }
        }
        n
    }

    /// Verifies every partition's invariants.
    pub fn check_invariants(&self) -> Result<(), String> {
        for part in &self.partitions {
            part.check_invariants()
                .map_err(|e| format!("predicate {}: {e}", part.predicate()))?;
        }
        let counted: usize = self.partitions.iter().map(Partition::num_triples).sum();
        if counted != self.num_triples {
            return Err(format!(
                "num_triples {} != counted {counted}",
                self.num_triples
            ));
        }
        Ok(())
    }

    /// Reassembles a store from parts (snapshot loading).
    pub(crate) fn from_parts(
        dict: Dictionary,
        partitions: Vec<Partition>,
        options: StoreOptions,
    ) -> Self {
        let num_triples = partitions.iter().map(Partition::num_triples).sum();
        TripleStore {
            dict,
            partitions,
            num_triples,
            options,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the full §3 running example (Table 1 data: teaches +
    /// worksFor).
    fn example_store() -> TripleStore {
        let mut b = StoreBuilder::new();
        let rows = [
            ("ProfessorA", "teaches", "Mathematics"),
            ("ProfessorB", "teaches", "Chemistry"),
            ("ProfessorC", "teaches", "Literature"),
            ("ProfessorA", "teaches", "Physics"),
            ("ProfessorA", "worksFor", "University1"),
            ("ProfessorB", "worksFor", "University2"),
            ("ProfessorC", "worksFor", "University2"),
        ];
        for (s, p, o) in rows {
            b.add_term_triple(&Term::iri(s), &Term::iri(p), &Term::iri(o));
        }
        b.build()
    }

    #[test]
    fn section3_running_example() {
        let store = example_store();
        assert_eq!(store.num_triples(), 7);
        assert_eq!(store.num_predicates(), 2);
        let teaches = store.dict().predicate_id(&Term::iri("teaches")).unwrap();
        let works_for = store.dict().predicate_id(&Term::iri("worksFor")).unwrap();

        let so = store.replica(teaches, SortOrder::SO).unwrap();
        assert_eq!(so.num_keys(), 3); // three professors teach
        let prof_a = store.dict().resource_id(&Term::iri("ProfessorA")).unwrap();
        assert_eq!(so.values_for_key(prof_a).len(), 2); // Mathematics, Physics

        // Example 3.2: search propO-S of worksFor for University1.
        let os = store.replica(works_for, SortOrder::OS).unwrap();
        let uni1 = store.dict().resource_id(&Term::iri("University1")).unwrap();
        assert_eq!(os.values_for_key(uni1), &[prof_a]);
        let uni2 = store.dict().resource_id(&Term::iri("University2")).unwrap();
        assert_eq!(os.values_for_key(uni2).len(), 2);

        assert_eq!(store.check_invariants(), Ok(()));
    }

    #[test]
    fn contains_and_iter() {
        let store = example_store();
        let d = store.dict();
        let t = EncodedTriple::new(
            d.resource_id(&Term::iri("ProfessorA")).unwrap(),
            d.predicate_id(&Term::iri("teaches")).unwrap(),
            d.resource_id(&Term::iri("Physics")).unwrap(),
        );
        assert!(store.contains(t));
        assert!(!store.contains(EncodedTriple::new(t.s, t.p, t.s)));
        assert_eq!(store.iter_triples().count(), 7);
    }

    #[test]
    fn idpos_respects_options() {
        let mut b = StoreBuilder::new();
        b.add_term_triple(&Term::iri("a"), &Term::iri("p"), &Term::iri("b"));
        let store = b.build_with(StoreOptions {
            build_idpos: false,
            ..StoreOptions::default()
        });
        assert!(store.replica(0, SortOrder::SO).unwrap().idpos().is_none());

        let mut b = StoreBuilder::new();
        b.add_term_triple(&Term::iri("a"), &Term::iri("p"), &Term::iri("b"));
        let store = b.build();
        assert!(store.replica(0, SortOrder::SO).unwrap().idpos().is_some());
    }

    #[test]
    fn empty_store() {
        let store = StoreBuilder::new().build();
        assert_eq!(store.num_triples(), 0);
        assert_eq!(store.num_predicates(), 0);
        assert!(store.partition(0).is_none());
        assert_eq!(store.check_invariants(), Ok(()));
    }

    #[test]
    fn predicate_with_no_triples_gets_empty_partition() {
        let mut b = StoreBuilder::new();
        // Encode a predicate into the dictionary without any triple.
        b.dict_mut().encode_predicate(&Term::iri("lonely"));
        b.add_term_triple(&Term::iri("a"), &Term::iri("p"), &Term::iri("b"));
        let store = b.build();
        assert_eq!(store.num_predicates(), 2);
        let lonely = store.dict().predicate_id(&Term::iri("lonely")).unwrap();
        assert_eq!(store.partition(lonely).unwrap().num_triples(), 0);
    }

    #[test]
    fn parallel_build_is_deterministic() {
        // The same data built at different thread counts must be
        // bit-identical (ordering, replicas, indexes).
        let make = |threads: usize| {
            let mut b = StoreBuilder::new();
            for i in 0..500u32 {
                b.add_term_triple(
                    &Term::iri(format!("s{}", i % 83)),
                    &Term::iri(format!("p{}", i % 7)),
                    &Term::iri(format!("o{}", (i * 13) % 91)),
                );
            }
            b.build_with(StoreOptions {
                build_threads: threads,
                ..StoreOptions::default()
            })
        };
        let one = make(1);
        for threads in [2, 4, 9] {
            let multi = make(threads);
            assert_eq!(multi.num_triples(), one.num_triples());
            assert_eq!(multi.check_invariants(), Ok(()));
            assert_eq!(
                multi.to_snapshot_bytes(),
                one.to_snapshot_bytes(),
                "{threads}-thread build differs from serial"
            );
        }
    }

    #[test]
    fn compressed_build_matches_raw() {
        let make = |compress: Option<usize>| {
            let mut b = StoreBuilder::new();
            for i in 0..4000u32 {
                b.add_term_triple(
                    &Term::iri(format!("s{}", i % 11)),
                    &Term::iri(format!("p{}", i % 3)),
                    &Term::iri(format!("o{}", (i * 7) % 2900)),
                );
            }
            b.build_with(StoreOptions {
                compress_min_values: compress,
                ..StoreOptions::default()
            })
        };
        let raw = make(None);
        let zip = make(Some(1));
        assert!(
            zip.partitions()
                .iter()
                .any(|p| p.replica(SortOrder::SO).is_compressed()),
            "threshold 1 must compress the large replicas"
        );
        assert_eq!(zip.check_invariants(), Ok(()));
        assert_eq!(zip.num_triples(), raw.num_triples());
        // Snapshots always serialize the raw representation.
        assert_eq!(zip.to_snapshot_bytes(), raw.to_snapshot_bytes());
        assert!(zip.partitions_memory_bytes() < raw.partitions_memory_bytes());
        for t in raw.iter_triples().step_by(97) {
            assert!(zip.contains(t));
        }
    }

    #[test]
    fn compress_values_after_build() {
        let mut b = StoreBuilder::new();
        for i in 0..3000u32 {
            b.add_term_triple(
                &Term::iri(format!("s{}", i % 5)),
                &Term::iri("p"),
                &Term::iri(format!("o{i}")),
            );
        }
        let mut store = b.build();
        let before = store.partitions_memory_bytes();
        let n = store.compress_values(64);
        assert!(n > 0);
        assert_eq!(store.options().compress_min_values, Some(64));
        assert!(store.partitions_memory_bytes() < before);
        assert_eq!(store.check_invariants(), Ok(()));
    }

    #[test]
    fn memory_accounting() {
        let store = example_store();
        assert!(store.partitions_memory_bytes() > 0);
        assert!(store.total_memory_bytes() > store.partitions_memory_bytes());
    }
}
