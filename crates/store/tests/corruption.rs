//! Hostile-input property tests for snapshot loading: arbitrary byte
//! mutations of a serialized snapshot must never panic the loader.
//!
//! Loading promises structural soundness (nothing downstream indexes
//! out of bounds), not semantic integrity — a mutation can produce a
//! *different but well-formed* store, which loads `Ok` and is caught by
//! the deep `parj-audit` checks instead. So the properties are:
//! decode returns (`Ok` or `Err`) without panicking; whatever loads can
//! be re-serialized and invariant-checked without panicking; and every
//! truncation is an error.

use proptest::prelude::*;

use parj_dict::Term;
use parj_store::{StoreBuilder, TripleStore};

fn snapshot_bytes() -> Vec<u8> {
    let mut b = StoreBuilder::new();
    for i in 0..30u32 {
        b.add_term_triple(
            &Term::iri(format!("http://e/s{}", i % 7)),
            &Term::iri(format!("http://e/p{}", i % 3)),
            &Term::iri(format!("http://e/o{}", i % 11)),
        );
    }
    b.build().to_snapshot_bytes()
}

/// Exercises one mutated payload end to end without panicking.
fn probe(bytes: &[u8]) {
    if let Ok(store) = TripleStore::from_snapshot_bytes(bytes) {
        // Structurally sound by the loader's contract: these walks must
        // not panic, whatever their verdict.
        let _ = store.check_invariants();
        let _ = store.to_snapshot_bytes();
        let _ = store.num_triples();
    }
}

proptest! {
    /// A single flipped byte anywhere in the payload never panics the
    /// loader, and whatever loads survives re-serialization.
    #[test]
    fn single_byte_mutation_never_panics(pos in 0usize..100_000, byte in 0u8..=255u8) {
        let mut bytes = snapshot_bytes();
        let pos = pos % bytes.len();
        bytes[pos] = byte;
        probe(&bytes);
    }

    /// A burst of mutations (up to 16 positions) never panics.
    #[test]
    fn scattered_mutations_never_panic(
        edits in proptest::collection::vec((0usize..100_000, 0u8..=255u8), 1..16)
    ) {
        let mut bytes = snapshot_bytes();
        let n = bytes.len();
        for &(pos, byte) in &edits {
            bytes[pos % n] = byte;
        }
        probe(&bytes);
    }

    /// Every proper prefix is rejected (and never panics).
    #[test]
    fn truncation_always_errors(cut in 0usize..100_000) {
        let bytes = snapshot_bytes();
        let cut = cut % bytes.len();
        prop_assert!(TripleStore::from_snapshot_bytes(&bytes[..cut]).is_err(), "cut at {cut}");
    }

    /// Appending trailing garbage never panics.
    #[test]
    fn trailing_garbage_never_panics(tail in proptest::collection::vec(0u8..=255u8, 1..64)) {
        let mut bytes = snapshot_bytes();
        bytes.extend_from_slice(&tail);
        probe(&bytes);
    }
}
