//! Loom model of the parallel staging + partition-build pipeline.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"`. The store's parallel
//! phases all follow the same pattern — an atomic ticket counter, slot
//! mutexes for publication, a scope join edge — and claim byte-for-byte
//! determinism at any thread count. The model re-runs staging and
//! building under injected schedules and compares the snapshot bytes
//! against a serial oracle on every one.
#![cfg(loom)]

use parj_dict::Term;
use parj_store::{StoreBuilder, StoreOptions};

fn triples(n: usize) -> Vec<(Term, Term, Term)> {
    (0..n)
        .map(|i| {
            (
                Term::iri(format!("http://e/s{}", i % 7)),
                Term::iri(format!("http://e/p{}", i % 3)),
                Term::iri(format!("http://e/o{}", (i + 2) % 5)),
            )
        })
        .collect()
}

#[test]
fn loom_parallel_staging_matches_serial_bytes() {
    // Serial oracle, computed once outside the model.
    let data = triples(24);
    let mut serial = StoreBuilder::new();
    for (s, p, o) in &data {
        serial.add_term_triple(s, p, o);
    }
    let mut serial_dict = Vec::new();
    serial.dict().encode_into(&mut serial_dict);
    let serial_store = serial.build().to_snapshot_bytes();

    loom::model(|| {
        let chunks: Vec<Vec<_>> = data.chunks(7).map(<[_]>::to_vec).collect();
        let mut b = StoreBuilder::new();
        b.add_triples_parallel(chunks, 3);
        let mut dict_bytes = Vec::new();
        b.dict().encode_into(&mut dict_bytes);
        assert_eq!(dict_bytes, serial_dict, "dictionary diverged on this schedule");
        let store = b.build_with(StoreOptions {
            build_threads: 2,
            ..StoreOptions::default()
        });
        assert_eq!(
            store.to_snapshot_bytes(),
            serial_store,
            "store bytes diverged on this schedule"
        );
    });
}
