//! Property tests: CSR construction is a faithful set-representation of
//! arbitrary triple multisets, the ID-to-Position index agrees with
//! binary search everywhere, and snapshots round-trip.

use proptest::prelude::*;

use parj_dict::Id;
use parj_store::{IdPosIndex, Partition, SortOrder, StoreBuilder, TripleStore};

proptest! {
    /// Partition::build represents exactly the set of input pairs, in
    /// both replicas, with all invariants intact.
    #[test]
    fn partition_is_faithful_set(
        pairs in proptest::collection::vec((0u32..500, 0u32..500), 0..300)
    ) {
        let part = Partition::build(0, &pairs);
        prop_assert_eq!(part.check_invariants(), Ok(()));
        let mut expect: Vec<(Id, Id)> = pairs.clone();
        expect.sort_unstable();
        expect.dedup();
        let got: Vec<(Id, Id)> = part.iter_so().collect();
        prop_assert_eq!(got, expect.clone());
        // Membership agrees for present and absent pairs.
        for &(s, o) in expect.iter().take(20) {
            prop_assert!(part.contains(s, o));
        }
        prop_assert!(!part.contains(501, 0));
        // O-S replica holds the flipped pairs.
        let mut flipped: Vec<(Id, Id)> = expect.iter().map(|&(s, o)| (o, s)).collect();
        flipped.sort_unstable();
        let from_os: Vec<(Id, Id)> = part.replica(SortOrder::OS).iter_pairs().collect();
        prop_assert_eq!(from_os, flipped);
    }

    /// IdPosIndex::lookup ≡ slice::binary_search over the whole universe,
    /// for arbitrary key sets and block intervals.
    #[test]
    fn idpos_equals_binary_search(
        mut keys in proptest::collection::vec(0u32..2048, 0..200),
        interval_pow in 0u32..4,
        extra_universe in 0usize..100,
    ) {
        keys.sort_unstable();
        keys.dedup();
        let universe = keys.last().map_or(1, |&m| m as usize + 1) + extra_universe;
        let interval = 64usize << interval_pow;
        let idx = IdPosIndex::build(&keys, universe, interval);
        for probe in 0..universe as Id {
            prop_assert_eq!(idx.lookup(probe), keys.binary_search(&probe).ok());
            prop_assert_eq!(idx.contains(probe), keys.binary_search(&probe).is_ok());
        }
        prop_assert_eq!(idx.lookup(universe as Id), None);
    }

    /// Store snapshot round-trips arbitrary triple sets exactly.
    #[test]
    fn snapshot_roundtrip(
        triples in proptest::collection::vec((0u32..60, 0u32..5, 0u32..60), 0..200)
    ) {
        let mut b = StoreBuilder::new();
        // Materialize dense dictionaries for the ids we use.
        let max_r = triples.iter().map(|t| t.0.max(t.2)).max().unwrap_or(0);
        let max_p = triples.iter().map(|t| t.1).max().unwrap_or(0);
        for r in 0..=max_r {
            b.dict_mut().encode_resource(&parj_dict::Term::iri(format!("r{r}")));
        }
        for p in 0..=max_p {
            b.dict_mut().encode_predicate(&parj_dict::Term::iri(format!("p{p}")));
        }
        for &(s, p, o) in &triples {
            b.add_encoded(parj_dict::EncodedTriple::new(s, p, o));
        }
        let store = b.build();
        prop_assert_eq!(store.check_invariants(), Ok(()));
        let back = TripleStore::from_snapshot_bytes(&store.to_snapshot_bytes()).unwrap();
        prop_assert_eq!(back.check_invariants(), Ok(()));
        let a: Vec<_> = store.iter_triples().collect();
        let c: Vec<_> = back.iter_triples().collect();
        prop_assert_eq!(a, c);
    }
}
