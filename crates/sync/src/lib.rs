//! # parj-sync — the workspace's synchronization shim
//!
//! Every concurrent crate in the workspace (`parj-obs`, `parj-dict`,
//! `parj-store`, `parj-join`, `parj-core`) imports its synchronization
//! primitives from here instead of `std::sync` / `std::thread` /
//! `parking_lot` directly. In a normal build the shim is a zero-cost
//! re-export of those types. Under `RUSTFLAGS="--cfg loom"` the same
//! names resolve to the `loom` model checker's instrumented types, so
//! the `loom_*` concurrency models exercise the *production* atomics
//! and locks, not copies of them.
//!
//! The `xtask lint` gate enforces adoption: shimmed crates may not
//! import `std::sync` or `std::thread` outside `#[cfg(test)]` code.
//!
//! API notes:
//!
//! * [`Mutex`] / [`RwLock`] use the non-poisoning `parking_lot`
//!   interface (`lock()` returns the guard directly). Poisoning-based
//!   recovery is not something the engine uses — worker panics are
//!   caught per worker and surfaced as errors instead.
//! * [`thread::scope`] is available in both modes (the vendored loom
//!   shim runs real threads, so scoped borrows work under models too).
//! * Atomic constructors stay `const` in both modes, so `static`
//!   metrics registries compile unchanged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[cfg(not(loom))]
mod imp {
    pub use parking_lot::{
        Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard, WaitTimeoutResult,
    };
    pub use std::sync::Arc;

    /// Atomic integer and flag types.
    pub mod atomic {
        pub use std::sync::atomic::{
            fence, AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering,
        };
    }

    /// Thread spawning, scoped threads and yields.
    pub mod thread {
        pub use std::thread::{
            available_parallelism, scope, sleep, spawn, yield_now, Builder, JoinHandle, Scope,
            ScopedJoinHandle,
        };
    }
}

#[cfg(loom)]
mod imp {
    pub use loom::sync::{
        Arc, Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard,
        WaitTimeoutResult,
    };

    /// Atomic integer and flag types (loom-instrumented).
    pub mod atomic {
        pub use loom::sync::atomic::{
            fence, AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering,
        };
    }

    /// Thread spawning, scoped threads and yields (loom-instrumented).
    pub mod thread {
        pub use loom::thread::{
            available_parallelism, scope, sleep, spawn, yield_now, Builder, JoinHandle, Scope,
            ScopedJoinHandle,
        };
    }
}

pub use imp::*;

pub mod ordered;

pub use ordered::{
    assert_acquisition_graph_acyclic, lock_wait_totals, recorded_edges, LockLevel, OrderedCondvar,
    OrderedMutex, OrderedMutexGuard, OrderedRwLock, OrderedRwLockReadGuard, OrderedRwLockWriteGuard,
};

#[cfg(debug_assertions)]
pub use ordered::held_locks;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomics_and_locks_roundtrip() {
        static COUNTER: atomic::AtomicU64 = atomic::AtomicU64::new(0);
        // ordering: Relaxed — single-threaded smoke test, no ordering needed.
        COUNTER.fetch_add(2, atomic::Ordering::Relaxed);
        assert_eq!(COUNTER.load(atomic::Ordering::Relaxed), 2);

        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);

        let rw = RwLock::new(5);
        assert_eq!(*rw.read(), 5);
        *rw.write() = 6;
        assert_eq!(rw.into_inner(), 6);
    }

    #[test]
    fn condvar_predicate_loop() {
        let shared = Arc::new((Mutex::new(0u32), Condvar::new()));
        let s2 = Arc::clone(&shared);
        let waiter = thread::spawn(move || {
            let (m, cv) = &*s2;
            let mut g = m.lock();
            while *g != 7 {
                g = cv.wait(g);
            }
            *g
        });
        {
            let (m, cv) = &*shared;
            *m.lock() = 7;
            cv.notify_all();
        }
        assert_eq!(waiter.join().expect("waiter exits"), 7);
    }

    #[test]
    fn scoped_threads_borrow() {
        let data = vec![1u64, 2, 3];
        let total = Mutex::new(0u64);
        thread::scope(|s| {
            let total = &total;
            for &x in &data {
                s.spawn(move || {
                    *total.lock() += x;
                });
            }
        });
        assert_eq!(total.into_inner(), 6);
    }
}
