//! Lock-hierarchy enforcement: levelled lock wrappers with a runtime
//! lock-order witness.
//!
//! Every `Mutex`/`RwLock`/`Condvar` in a product crate is declared at a
//! [`LockLevel`] from one workspace-wide numeric hierarchy (see
//! DESIGN.md §17 for the full table). The discipline is simple and
//! total: **a thread may only acquire a lock at a strictly lower level
//! than every lock it already holds**. Because the hierarchy is a
//! fixed total order, following the rule makes deadlock by lock-order
//! inversion impossible — there is no pair of threads that can each
//! hold what the other wants.
//!
//! Three mechanisms triangulate the same invariant:
//!
//! * **Runtime witness** (`debug_assertions` builds only): a
//!   thread-local stack of held `(level, name)` pairs. Acquiring at a
//!   level `>=` the most recent still-held lock panics immediately,
//!   naming both locks. Release builds compile the witness down to
//!   nothing.
//! * **Acquisition-order graph**: every nested acquisition records a
//!   `held → acquired` edge into a process-global graph. The graph is
//!   checked for cycles at every witness-tracked thread's exit (debug
//!   builds) and explicitly via
//!   [`assert_acquisition_graph_acyclic`], which the test suites call;
//!   a cycle found at thread exit is reported on the next explicit
//!   check rather than panicking inside a TLS destructor.
//! * **Static pass**: `cargo xtask locks` denies raw `std::sync` /
//!   `parj_sync::{Mutex, RwLock, Condvar}` in product crates, requires
//!   a `LockLevel` at every wrapper construction, and cross-checks the
//!   declared hierarchy against DESIGN.md §17.
//!
//! In all builds (release included) the wrappers record **contention
//! wait time** per level into process-global counters: the fast path is
//! a `try_lock`, and only when that fails does the slow path time the
//! blocking acquisition. [`lock_wait_totals`] feeds the
//! `parj_lock_wait_micros{level=...}` metric family at snapshot time.

use std::time::Instant;

use crate::imp;

/// The workspace-wide lock hierarchy, highest first. A thread may
/// acquire a lock only at a strictly lower level than every lock it
/// already holds; two locks that are ever held together must therefore
/// sit at *different* levels, ordered outer-above-inner.
///
/// The numeric values are the authority: `cargo xtask locks` checks
/// they are pairwise distinct (a duplicate would collapse two levels
/// into an unordered — cyclic — pair) and that this enum matches the
/// lock table in DESIGN.md §17.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum LockLevel {
    /// `parj-server`'s live cancel-token registry (`server.live_tokens`).
    Server = 90,
    /// Per-client token-bucket quota table (`admission.quota_buckets`).
    AdmissionQuota = 85,
    /// Retry-After latency moving window (`admission.latency_window`).
    AdmissionWindow = 80,
    /// The `SharedParj` engine `RwLock` (`engine.shared`) — held for a
    /// whole query (read) or mutation batch (write); everything the
    /// engine touches sits beneath it.
    Engine = 70,
    /// The cache's per-predicate epoch table (`cache.pred_epochs`).
    CacheEpoch = 60,
    /// One LRU shard of the plan/result cache (`cache.shard`).
    CacheShard = 55,
    /// The worker pool's queue + shutdown state (`pool.state`, with the
    /// `pool.work` condvar); held while claiming seats on a job.
    PoolState = 45,
    /// Per-job seat accounting (`pool.job_meta`, with the
    /// `pool.job_done` condvar); acquired under `pool.state`.
    PoolJob = 40,
    /// The pooled executor's participant output collection
    /// (`exec.pooled_output`).
    ExecOutput = 35,
    /// EXPLAIN profile capture (`engine.explain_profiles`).
    Profile = 30,
    /// Short-lived parallel-staging publication locks (loader / dict /
    /// store slot mutexes and pair tables); leaf locks, never nested
    /// in each other.
    Staging = 20,
    /// Observability: `GaugeVec` label maps (`obs.gauge_vec`) — the
    /// floor of the hierarchy, safe to touch from anywhere.
    Metrics = 10,
}

impl LockLevel {
    /// Every level, highest (outermost) first.
    pub const ALL: [LockLevel; 12] = [
        LockLevel::Server,
        LockLevel::AdmissionQuota,
        LockLevel::AdmissionWindow,
        LockLevel::Engine,
        LockLevel::CacheEpoch,
        LockLevel::CacheShard,
        LockLevel::PoolState,
        LockLevel::PoolJob,
        LockLevel::ExecOutput,
        LockLevel::Profile,
        LockLevel::Staging,
        LockLevel::Metrics,
    ];

    /// Stable label for metrics and diagnostics.
    pub const fn as_str(self) -> &'static str {
        match self {
            LockLevel::Server => "server",
            LockLevel::AdmissionQuota => "admission_quota",
            LockLevel::AdmissionWindow => "admission_window",
            LockLevel::Engine => "engine",
            LockLevel::CacheEpoch => "cache_epoch",
            LockLevel::CacheShard => "cache_shard",
            LockLevel::PoolState => "pool_state",
            LockLevel::PoolJob => "pool_job",
            LockLevel::ExecOutput => "exec_output",
            LockLevel::Profile => "profile",
            LockLevel::Staging => "staging",
            LockLevel::Metrics => "metrics",
        }
    }

    /// Position of this level in [`LockLevel::ALL`] (used to index the
    /// per-level wait counters).
    const fn index(self) -> usize {
        match self {
            LockLevel::Server => 0,
            LockLevel::AdmissionQuota => 1,
            LockLevel::AdmissionWindow => 2,
            LockLevel::Engine => 3,
            LockLevel::CacheEpoch => 4,
            LockLevel::CacheShard => 5,
            LockLevel::PoolState => 6,
            LockLevel::PoolJob => 7,
            LockLevel::ExecOutput => 8,
            LockLevel::Profile => 9,
            LockLevel::Staging => 10,
            LockLevel::Metrics => 11,
        }
    }
}

impl std::fmt::Display for LockLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.as_str(), *self as u8)
    }
}

/// Per-level cumulative contention wait, all builds. The witness and
/// graph bookkeeping below are raw `std` primitives on purpose: they
/// instrument the locks, so they must not themselves be loom-modeled
/// (and a loom type inside the checker would recurse the scheduler).
mod waits {
    use std::sync::atomic::{AtomicU64, Ordering};

    use super::LockLevel;

    const N: usize = LockLevel::ALL.len();
    // The repeat-element array-init idiom for atomics on rust 1.75
    // (inline-const repeats land in 1.79); each array slot gets its
    // own copy, the const itself is never shared.
    #[allow(clippy::declare_interior_mutable_const)]
    const ZERO: AtomicU64 = AtomicU64::new(0);
    // Accumulated in nanoseconds so many sub-microsecond waits still
    // add up instead of each truncating to zero; the exported unit is
    // microseconds (divided once at read time).
    static WAIT_NANOS: [AtomicU64; N] = [ZERO; N];

    pub(super) fn record(level: LockLevel, nanos: u64) {
        WAIT_NANOS[level.index()].fetch_add(nanos, Ordering::Relaxed);
    }

    pub(super) fn totals() -> Vec<(&'static str, u64)> {
        LockLevel::ALL
            .iter()
            .map(|&l| (l.as_str(), WAIT_NANOS[l.index()].load(Ordering::Relaxed) / 1_000))
            .collect()
    }
}

/// Cumulative microseconds threads spent *blocked* acquiring ordered
/// locks, per level, process-wide since start. Uncontended
/// acquisitions (the `try_lock` fast path) cost and record nothing.
/// Feeds the `parj_lock_wait_micros` metric family.
pub fn lock_wait_totals() -> Vec<(&'static str, u64)> {
    waits::totals()
}

/// The acquisition-order graph: directed `held → acquired` edges over
/// lock names, fed by the witness in debug builds.
mod graph {
    use std::collections::{BTreeMap, BTreeSet};
    use std::sync::{Mutex, OnceLock};

    type Edges = BTreeMap<&'static str, BTreeSet<&'static str>>;

    fn edges() -> &'static Mutex<Edges> {
        static EDGES: OnceLock<Mutex<Edges>> = OnceLock::new();
        EDGES.get_or_init(|| Mutex::new(BTreeMap::new()))
    }

    // Only the debug-build witness feeds the graph; release builds
    // still export `recorded_edges`/the cycle check (they just see an
    // empty graph), so the recorder alone goes unused there.
    #[cfg_attr(not(debug_assertions), allow(dead_code))]
    pub(super) fn record(held: &'static str, acquired: &'static str) {
        let mut g = match edges().lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        g.entry(held).or_default().insert(acquired);
    }

    /// Every recorded `held → acquired` edge, sorted.
    pub fn recorded_edges() -> Vec<(&'static str, &'static str)> {
        let g = match edges().lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        g.iter()
            .flat_map(|(&from, tos)| tos.iter().map(move |&to| (from, to)))
            .collect()
    }

    /// Depth-first cycle search; returns one cycle as a name path
    /// (`a → b → a`) if any exists.
    pub(super) fn find_cycle() -> Option<Vec<&'static str>> {
        let g = match edges().lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        let mut done: BTreeSet<&'static str> = BTreeSet::new();
        for &start in g.keys() {
            if done.contains(start) {
                continue;
            }
            // Iterative DFS with an explicit path for cycle reporting.
            let mut path: Vec<&'static str> = vec![start];
            let mut iters: Vec<Vec<&'static str>> = vec![g
                .get(start)
                .map(|s| s.iter().copied().collect())
                .unwrap_or_default()];
            while let Some(frame) = iters.last_mut() {
                match frame.pop() {
                    Some(next) => {
                        if let Some(pos) = path.iter().position(|&n| n == next) {
                            let mut cycle: Vec<&'static str> = path[pos..].to_vec();
                            cycle.push(next);
                            return Some(cycle);
                        }
                        if done.contains(next) {
                            continue;
                        }
                        path.push(next);
                        iters.push(
                            g.get(next)
                                .map(|s| s.iter().copied().collect())
                                .unwrap_or_default(),
                        );
                    }
                    None => {
                        iters.pop();
                        if let Some(n) = path.pop() {
                            done.insert(n);
                        }
                    }
                }
            }
        }
        None
    }
}

pub use graph::recorded_edges;

/// Set by a thread-exit check that found a cycle (panicking inside a
/// TLS destructor would abort, so the finding is deferred to the next
/// explicit assertion instead).
static GRAPH_POISONED: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// Panics if the recorded acquisition-order graph contains a cycle (or
/// if a thread-exit check already found one). The level discipline
/// makes a cycle unreachable through the wrappers; this is the
/// belt-and-braces check the test suites run at process exit, and it
/// is what a future escape hatch (a lock acquired outside the
/// wrappers) would trip.
pub fn assert_acquisition_graph_acyclic() {
    if GRAPH_POISONED.load(std::sync::atomic::Ordering::Relaxed) {
        panic!("lock acquisition-order graph: a cycle was detected at a thread's exit");
    }
    if let Some(cycle) = graph::find_cycle() {
        panic!(
            "lock acquisition-order graph contains a cycle: {}",
            cycle.join(" -> ")
        );
    }
}

/// The runtime witness: a thread-local stack of held locks, active only
/// under `debug_assertions`.
#[cfg(debug_assertions)]
mod witness {
    use std::cell::RefCell;

    use super::LockLevel;

    /// Runs the graph cycle check when a witness-tracked thread exits.
    struct ExitCheck;

    impl Drop for ExitCheck {
        fn drop(&mut self) {
            // A panic in a TLS destructor aborts the process; record
            // the finding for the next explicit assertion instead.
            if super::graph::find_cycle().is_some() {
                super::GRAPH_POISONED.store(true, std::sync::atomic::Ordering::Relaxed);
                eprintln!(
                    "parj-sync witness: lock acquisition-order graph cycle detected at \
                     thread exit; assert_acquisition_graph_acyclic() will panic"
                );
            }
        }
    }

    thread_local! {
        static HELD: RefCell<Vec<(LockLevel, &'static str)>> = const { RefCell::new(Vec::new()) };
        static EXIT_CHECK: ExitCheck = const { ExitCheck };
    }

    pub(super) fn on_acquire(level: LockLevel, name: &'static str) {
        HELD.with(|h| {
            let mut stack = h.borrow_mut();
            if let Some(&(top_level, top_name)) = stack.last() {
                if level >= top_level {
                    // Deliberately before the push and before the
                    // graph record: a violation must not contaminate
                    // either structure.
                    panic!(
                        "lock-order violation: acquiring `{name}` (level {level}) while \
                         holding `{top_name}` (level {top_level}); a lock may only be \
                         acquired at a strictly lower level than every lock already held"
                    );
                }
                super::graph::record(top_name, name);
            }
            stack.push((level, name));
        });
        // Touch the sentinel so this thread runs the exit check.
        EXIT_CHECK.with(|_| {});
    }

    pub(super) fn on_release(level: LockLevel, name: &'static str) {
        HELD.with(|h| {
            let mut stack = h.borrow_mut();
            // Guards may legally be dropped out of LIFO order; remove
            // the most recent matching entry. (The stack stays sorted
            // strictly descending either way, so `last()` remains the
            // minimum held level.)
            if let Some(pos) = stack.iter().rposition(|&(l, n)| l == level && n == name) {
                stack.remove(pos);
            }
        });
    }

    /// Names of the locks this thread currently holds, outermost first.
    pub fn held_locks() -> Vec<&'static str> {
        HELD.with(|h| h.borrow().iter().map(|&(_, n)| n).collect())
    }
}

#[cfg(debug_assertions)]
pub use witness::held_locks;

/// Release builds: the witness compiles to nothing.
#[cfg(not(debug_assertions))]
mod witness {
    use super::LockLevel;

    #[inline(always)]
    pub(super) fn on_acquire(_level: LockLevel, _name: &'static str) {}

    #[inline(always)]
    pub(super) fn on_release(_level: LockLevel, _name: &'static str) {}
}

/// A [`imp::Mutex`] that carries its place in the workspace lock
/// hierarchy. See the module docs for the acquisition discipline.
pub struct OrderedMutex<T> {
    level: LockLevel,
    name: &'static str,
    inner: imp::Mutex<T>,
}

impl<T> OrderedMutex<T> {
    /// A mutex named `name` at `level` around `value`.
    pub fn new(level: LockLevel, name: &'static str, value: T) -> Self {
        OrderedMutex {
            level,
            name,
            inner: imp::Mutex::new(value),
        }
    }

    /// Acquires the lock, enforcing the level discipline in debug
    /// builds and recording contention wait time in all builds.
    pub fn lock(&self) -> OrderedMutexGuard<'_, T> {
        witness::on_acquire(self.level, self.name);
        let inner = match self.inner.try_lock() {
            Some(g) => g,
            None => {
                let t0 = Instant::now();
                let g = self.inner.lock();
                waits::record(self.level, t0.elapsed().as_nanos() as u64);
                g
            }
        };
        OrderedMutexGuard {
            inner: Some(inner),
            level: self.level,
            name: self.name,
        }
    }

    /// This lock's declared level.
    pub fn level(&self) -> LockLevel {
        self.level
    }

    /// This lock's diagnostic name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T> std::fmt::Debug for OrderedMutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OrderedMutex")
            .field("name", &self.name)
            .field("level", &self.level)
            .finish_non_exhaustive()
    }
}

/// RAII guard from [`OrderedMutex::lock`]; pops the witness entry on
/// drop.
pub struct OrderedMutexGuard<'a, T> {
    /// `None` only transiently inside [`OrderedCondvar::wait`], which
    /// takes the inner guard out before blocking.
    inner: Option<imp::MutexGuard<'a, T>>,
    level: LockLevel,
    name: &'static str,
}

impl<T> std::ops::Deref for OrderedMutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<T> std::ops::DerefMut for OrderedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

impl<T> Drop for OrderedMutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.take().is_some() {
            witness::on_release(self.level, self.name);
        }
    }
}

/// A [`imp::RwLock`] that carries its place in the workspace lock
/// hierarchy. Readers and writers follow the same level discipline —
/// the hierarchy orders lock *objects*, not access modes.
pub struct OrderedRwLock<T> {
    level: LockLevel,
    name: &'static str,
    inner: imp::RwLock<T>,
}

impl<T> OrderedRwLock<T> {
    /// A reader-writer lock named `name` at `level` around `value`.
    pub fn new(level: LockLevel, name: &'static str, value: T) -> Self {
        OrderedRwLock {
            level,
            name,
            inner: imp::RwLock::new(value),
        }
    }

    /// Acquires a shared read guard under the level discipline.
    pub fn read(&self) -> OrderedRwLockReadGuard<'_, T> {
        witness::on_acquire(self.level, self.name);
        let inner = match self.inner.try_read() {
            Some(g) => g,
            None => {
                let t0 = Instant::now();
                let g = self.inner.read();
                waits::record(self.level, t0.elapsed().as_nanos() as u64);
                g
            }
        };
        OrderedRwLockReadGuard {
            inner,
            level: self.level,
            name: self.name,
        }
    }

    /// Acquires the exclusive write guard under the level discipline.
    pub fn write(&self) -> OrderedRwLockWriteGuard<'_, T> {
        witness::on_acquire(self.level, self.name);
        let inner = match self.inner.try_write() {
            Some(g) => g,
            None => {
                let t0 = Instant::now();
                let g = self.inner.write();
                waits::record(self.level, t0.elapsed().as_nanos() as u64);
                g
            }
        };
        OrderedRwLockWriteGuard {
            inner,
            level: self.level,
            name: self.name,
        }
    }

    /// This lock's declared level.
    pub fn level(&self) -> LockLevel {
        self.level
    }

    /// This lock's diagnostic name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T> std::fmt::Debug for OrderedRwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OrderedRwLock")
            .field("name", &self.name)
            .field("level", &self.level)
            .finish_non_exhaustive()
    }
}

/// Shared read guard from [`OrderedRwLock::read`].
pub struct OrderedRwLockReadGuard<'a, T> {
    inner: imp::RwLockReadGuard<'a, T>,
    level: LockLevel,
    name: &'static str,
}

impl<T> std::ops::Deref for OrderedRwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> Drop for OrderedRwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        witness::on_release(self.level, self.name);
    }
}

/// Exclusive write guard from [`OrderedRwLock::write`].
pub struct OrderedRwLockWriteGuard<'a, T> {
    inner: imp::RwLockWriteGuard<'a, T>,
    level: LockLevel,
    name: &'static str,
}

impl<T> std::ops::Deref for OrderedRwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> std::ops::DerefMut for OrderedRwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T> Drop for OrderedRwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        witness::on_release(self.level, self.name);
    }
}

/// A condition variable associated with [`OrderedMutex`]es of one
/// declared level: waiting releases the mutex, so the witness pops the
/// held entry for the duration of the block and re-checks the level
/// discipline on wake-up re-acquisition.
pub struct OrderedCondvar {
    level: LockLevel,
    name: &'static str,
    inner: imp::Condvar,
}

impl OrderedCondvar {
    /// A condition variable named `name`, waitable only with guards of
    /// mutexes declared at the same `level`.
    pub fn new(level: LockLevel, name: &'static str) -> Self {
        OrderedCondvar {
            level,
            name,
            inner: imp::Condvar::new(),
        }
    }

    /// Releases `guard`'s mutex and blocks until notified; re-acquires
    /// (re-entering the witness) before returning. Spurious wakeups are
    /// possible — callers must re-check their predicate in a loop.
    pub fn wait<'a, T>(&self, mut guard: OrderedMutexGuard<'a, T>) -> OrderedMutexGuard<'a, T> {
        debug_assert_eq!(
            self.level, guard.level,
            "condvar `{}` waited with a guard of `{}` at a different level",
            self.name, guard.name
        );
        let (level, name) = (guard.level, guard.name);
        let inner = guard.inner.take().expect("guard present outside wait");
        witness::on_release(level, name);
        let inner = self.inner.wait(inner);
        witness::on_acquire(level, name);
        OrderedMutexGuard {
            inner: Some(inner),
            level,
            name,
        }
    }

    /// Like [`OrderedCondvar::wait`] but also returns after `timeout`.
    pub fn wait_timeout<'a, T>(
        &self,
        mut guard: OrderedMutexGuard<'a, T>,
        timeout: std::time::Duration,
    ) -> (OrderedMutexGuard<'a, T>, imp::WaitTimeoutResult) {
        debug_assert_eq!(
            self.level, guard.level,
            "condvar `{}` waited with a guard of `{}` at a different level",
            self.name, guard.name
        );
        let (level, name) = (guard.level, guard.name);
        let inner = guard.inner.take().expect("guard present outside wait");
        witness::on_release(level, name);
        let (inner, timed_out) = self.inner.wait_timeout(inner, timeout);
        witness::on_acquire(level, name);
        (
            OrderedMutexGuard {
                inner: Some(inner),
                level,
                name,
            },
            timed_out,
        )
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// This condvar's declared level.
    pub fn level(&self) -> LockLevel {
        self.level
    }

    /// This condvar's diagnostic name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl std::fmt::Debug for OrderedCondvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OrderedCondvar")
            .field("name", &self.name)
            .field("level", &self.level)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_strictly_descending_in_all() {
        for pair in LockLevel::ALL.windows(2) {
            assert!(
                (pair[0] as u8) > (pair[1] as u8),
                "ALL must be sorted strictly descending: {:?}",
                pair
            );
        }
    }

    #[test]
    fn ordered_acquisition_and_wait_totals() {
        let outer = OrderedMutex::new(LockLevel::PoolState, "test.outer", 1u32);
        let inner = OrderedMutex::new(LockLevel::Metrics, "test.inner", 2u32);
        let g1 = outer.lock();
        let g2 = inner.lock();
        assert_eq!(*g1 + *g2, 3);
        drop(g2);
        drop(g1);
        let totals = lock_wait_totals();
        assert_eq!(totals.len(), LockLevel::ALL.len());
        assert!(totals.iter().any(|&(name, _)| name == "pool_state"));
    }

    #[test]
    fn rwlock_and_display() {
        let rw = OrderedRwLock::new(LockLevel::Engine, "test.rw", 5u32);
        assert_eq!(*rw.read(), 5);
        *rw.write() = 6;
        assert_eq!(rw.into_inner(), 6);
        assert_eq!(LockLevel::Engine.to_string(), "engine/70");
    }
}
