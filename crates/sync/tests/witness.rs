//! Regression tests for the lock-order witness itself (DESIGN.md §17).
//!
//! The witness only exists under `debug_assertions`; the whole suite is
//! compiled out of release test runs, where the wrappers are
//! passthroughs.
#![cfg(debug_assertions)]
#![cfg(not(loom))]

use std::sync::Arc;
use std::time::Duration;

use parj_sync::{
    assert_acquisition_graph_acyclic, recorded_edges, LockLevel, OrderedCondvar, OrderedMutex,
    OrderedRwLock,
};

/// Runs `f` on a fresh thread (its own witness stack) and returns the
/// panic message if it panicked.
fn panic_message_of(f: impl FnOnce() + Send + 'static) -> Option<String> {
    std::thread::spawn(f).join().err().map(|payload| {
        payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_else(|| "<non-string panic payload>".into())
    })
}

#[test]
fn inverted_order_acquisition_is_caught_and_names_both_locks() {
    let msg = panic_message_of(|| {
        let inner = OrderedMutex::new(LockLevel::Metrics, "witness.inverted_inner", ());
        let outer = OrderedMutex::new(LockLevel::Engine, "witness.inverted_outer", ());
        let _low = inner.lock();
        // Metrics is the floor of the hierarchy; acquiring Engine above
        // it inverts the declared order.
        let _high = outer.lock();
    })
    .expect("inverted acquisition must panic");
    assert!(
        msg.contains("witness.inverted_inner") && msg.contains("witness.inverted_outer"),
        "panic must name both locks, got: {msg}"
    );
    assert!(msg.contains("lock-order violation"), "got: {msg}");
}

#[test]
fn same_level_reentry_is_caught_and_names_both_locks() {
    let msg = panic_message_of(|| {
        let a = OrderedMutex::new(LockLevel::Staging, "witness.same_level_a", ());
        let b = OrderedMutex::new(LockLevel::Staging, "witness.same_level_b", ());
        let _ga = a.lock();
        // Same level while held: would deadlock if both threads did it
        // in opposite orders, so the witness rejects it outright.
        let _gb = b.lock();
    })
    .expect("same-level nested acquisition must panic");
    assert!(
        msg.contains("witness.same_level_a") && msg.contains("witness.same_level_b"),
        "panic must name both locks, got: {msg}"
    );
}

#[test]
fn rwlock_read_participates_in_the_witness() {
    let msg = panic_message_of(|| {
        let low = OrderedRwLock::new(LockLevel::Metrics, "witness.rw_low", ());
        let high = OrderedRwLock::new(LockLevel::Engine, "witness.rw_high", ());
        let _r = low.read();
        let _w = high.write();
    })
    .expect("read-then-higher-write must panic");
    assert!(msg.contains("witness.rw_low") && msg.contains("witness.rw_high"));
}

#[test]
fn full_hierarchy_descent_passes_clean() {
    // One lock per declared level, acquired outermost-first: the
    // discipline's canonical legal path. Must not panic, and every
    // recorded edge must point strictly downward.
    let locks: Vec<OrderedMutex<u8>> = LockLevel::ALL
        .iter()
        .map(|&l| OrderedMutex::new(l, l.as_str(), l as u8))
        .collect();
    let guards: Vec<_> = locks.iter().map(|m| m.lock()).collect();
    assert_eq!(guards.len(), LockLevel::ALL.len());
    drop(guards);
    assert_acquisition_graph_acyclic();
}

#[test]
fn out_of_order_release_keeps_the_stack_consistent() {
    let a = OrderedMutex::new(LockLevel::Engine, "witness.release_a", ());
    let b = OrderedMutex::new(LockLevel::PoolState, "witness.release_b", ());
    let c = OrderedMutex::new(LockLevel::Staging, "witness.release_c", ());
    let ga = a.lock();
    let gb = b.lock();
    // Drop the *outermost* first: guards may die in any order.
    drop(ga);
    let gc = c.lock();
    drop(gb);
    drop(gc);
    // The stack drained fully: a fresh top-level acquisition works.
    drop(a.lock());
}

#[test]
fn condvar_wait_releases_and_reacquires_the_witness_entry() {
    let pair = Arc::new((
        OrderedMutex::new(LockLevel::PoolState, "witness.cv_mutex", false),
        OrderedCondvar::new(LockLevel::PoolState, "witness.cv"),
    ));
    let p2 = Arc::clone(&pair);
    let waiter = std::thread::spawn(move || {
        let (m, cv) = &*p2;
        let mut g = m.lock();
        while !*g {
            g = cv.wait(g);
        }
        // Post-wait the guard is witness-tracked again: going *up* the
        // hierarchy from here must still be rejected.
        drop(g);
    });
    // While the waiter blocks, this thread takes the same mutex (the
    // wait released it) — proving the witness entry was popped too.
    std::thread::sleep(Duration::from_millis(20));
    {
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
    }
    waiter.join().expect("waiter exits clean");
}

#[test]
fn condvar_wait_timeout_roundtrips_the_guard() {
    let m = OrderedMutex::new(LockLevel::PoolJob, "witness.cv_timeout_mutex", 0u32);
    let cv = OrderedCondvar::new(LockLevel::PoolJob, "witness.cv_timeout");
    let g = m.lock();
    let (mut g, res) = cv.wait_timeout(g, Duration::from_millis(5));
    assert!(res.timed_out());
    *g += 1;
    drop(g);
    // After the wait the lower-level world is still reachable.
    let low = OrderedMutex::new(LockLevel::Metrics, "witness.cv_timeout_low", ());
    let _gl = {
        let _gj = m.lock();
        low.lock()
    };
}

#[test]
fn acquisition_graph_records_nesting_edges_and_stays_acyclic() {
    let outer = OrderedMutex::new(LockLevel::CacheEpoch, "witness.graph_outer", ());
    let inner = OrderedMutex::new(LockLevel::CacheShard, "witness.graph_inner", ());
    {
        let _o = outer.lock();
        let _i = inner.lock();
    }
    let edges = recorded_edges();
    assert!(
        edges.contains(&("witness.graph_outer", "witness.graph_inner")),
        "nesting must record a held->acquired edge, got: {edges:?}"
    );
    // The process-exit check in tests: everything this suite recorded
    // (all level-descending) must form a DAG.
    assert_acquisition_graph_acyclic();
}

#[test]
fn violation_leaves_no_residue_on_the_failing_thread_state() {
    // A rejected acquisition must not record a graph edge: the check
    // fires before bookkeeping, so the global graph stays a DAG that
    // assert_acquisition_graph_acyclic can vouch for.
    let _ = panic_message_of(|| {
        let low = OrderedMutex::new(LockLevel::Metrics, "witness.residue_low", ());
        let high = OrderedMutex::new(LockLevel::Server, "witness.residue_high", ());
        let _l = low.lock();
        let _h = high.lock();
    });
    let edges = recorded_edges();
    assert!(
        !edges.contains(&("witness.residue_low", "witness.residue_high")),
        "a rejected acquisition must not be recorded, got: {edges:?}"
    );
    assert_acquisition_graph_acyclic();
}
