//! Hand-rolled workspace lint gate.
//!
//! No `syn` in the offline vendor set, so this is a line-oriented
//! scanner over a comment/string-stripped view of each source file —
//! precise enough for the five rules it enforces, and honest about its
//! scope (substring checks on code with literals blanked out):
//!
//! 1. `ordering-justified` — every *atomic* `Ordering::` use outside
//!    `crates/sync` carries a nearby `// ordering:` justification.
//! 2. `no-raw-sync` — shimmed crates (including `parj-server`) must
//!    reach `std::sync` / `std::thread` through `parj_sync` in
//!    non-test code, or loom models silently stop modeling those
//!    edges. The `locks` pass (`locks.rs`) extends this to deny raw
//!    `Mutex`/`RwLock`/`Condvar` types in favour of the level-carrying
//!    ordered wrappers.
//! 3. `hot-path-no-panic` — the join hot path (executor, search, rows,
//!    and the delta-store merge iterators it probes through) never
//!    calls `unwrap`/`expect`/`panic!`-family macros; failures flow
//!    through `ExecFailure`.
//! 4. `dead-code-reason` — `#[allow(dead_code)]` requires an adjacent
//!    comment saying why.
//! 5. `generation-boundary` — the cache's store-generation protocol
//!    (`store_generation` / `bump_generation`) is only touched by
//!    `crates/cache` and `crates/core`; any other crate reading or
//!    bumping it could serve stale answers past the invalidation
//!    boundary.
//! 6. `unsafe-confined` — `unsafe` and `std::arch` live only in the
//!    audited SIMD codec module (`crates/store/src/codec.rs`), where
//!    every `unsafe fn` is a `#[target_feature]` kernel and every
//!    `unsafe {}` call site sits right after a runtime feature
//!    detection check. The workspace stays `deny(unsafe_code)`
//!    everywhere else.

use std::path::{Path, PathBuf};

/// A source file reduced to checkable form.
pub struct Stripped {
    /// Code per line, with comment text and string/char literal
    /// contents blanked to spaces (delimiters kept).
    pub code: Vec<String>,
    /// Comment text per line (both `//` and `/* */` bodies).
    pub comments: Vec<String>,
    /// Per line: inside a `#[cfg(test)]` item (or the attribute
    /// itself).
    pub in_test: Vec<bool>,
}

/// One rule violation, with coordinates.
#[derive(Debug, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Stable rule name.
    pub rule: &'static str,
    /// What is wrong and how to fix it.
    pub msg: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file.display(), self.line, self.rule, self.msg)
    }
}

/// Lexer state for [`strip`].
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
}

/// Strips `src` into code/comment line pairs. The stripper understands
/// line and (nested) block comments, plain/byte/raw string literals,
/// char literals, and lifetimes.
pub fn strip(src: &str) -> Stripped {
    let chars: Vec<char> = src.chars().collect();
    let mut code_lines = Vec::new();
    let mut comment_lines = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut state = State::Code;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if matches!(state, State::LineComment) {
                state = State::Code;
            }
            code_lines.push(std::mem::take(&mut code));
            comment_lines.push(std::mem::take(&mut comment));
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    state = State::LineComment;
                    i += 2;
                    continue;
                }
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(1);
                    i += 2;
                    continue;
                }
                // Raw / byte string openers: r" r#" br" b" — only when
                // the prefix is not the tail of an identifier.
                if (c == 'r' || c == 'b')
                    && !i.checked_sub(1).is_some_and(|p| {
                        chars[p].is_alphanumeric() || chars[p] == '_'
                    })
                {
                    let mut j = i;
                    let mut saw_r = false;
                    if chars.get(j) == Some(&'b') {
                        j += 1;
                    }
                    if chars.get(j) == Some(&'r') {
                        saw_r = true;
                        j += 1;
                    }
                    let mut hashes = 0u32;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') && (saw_r || hashes == 0) && j > i {
                        if saw_r {
                            code.push('"');
                            state = State::RawStr(hashes);
                            i = j + 1;
                            continue;
                        } else if hashes == 0 && chars.get(i) == Some(&'b') && chars.get(i + 1) == Some(&'"') {
                            code.push('"');
                            state = State::Str;
                            i += 2;
                            continue;
                        }
                    }
                }
                if c == '"' {
                    code.push('"');
                    state = State::Str;
                    i += 1;
                    continue;
                }
                if c == '\'' {
                    // Char literal vs lifetime.
                    if chars.get(i + 1) == Some(&'\\') {
                        // Escaped char literal: skip to the closing quote.
                        code.push_str("' '");
                        let mut j = i + 2;
                        while j < chars.len() && chars[j] != '\'' {
                            j += 1;
                        }
                        i = j + 1;
                        continue;
                    }
                    if chars.get(i + 2) == Some(&'\'') && chars.get(i + 1) != Some(&'\'') {
                        code.push_str("' '");
                        i += 3;
                        continue;
                    }
                    // Lifetime: emit as-is.
                    code.push('\'');
                    i += 1;
                    continue;
                }
                code.push(c);
                i += 1;
            }
            State::LineComment => {
                comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '*' && chars.get(i + 1) == Some(&'/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else {
                    comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    i += 2; // skip the escaped char (blanked anyway)
                    code.push(' ');
                } else if c == '"' {
                    code.push('"');
                    state = State::Code;
                    i += 1;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for k in 0..hashes as usize {
                        if chars.get(i + 1 + k) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        code.push('"');
                        state = State::Code;
                        i += 1 + hashes as usize;
                        continue;
                    }
                }
                code.push(' ');
                i += 1;
            }
        }
    }
    code_lines.push(code);
    comment_lines.push(comment);

    let in_test = mark_test_regions(&code_lines);
    Stripped {
        code: code_lines,
        comments: comment_lines,
        in_test,
    }
}

/// Marks lines covered by a `#[cfg(test)]` item by tracking brace depth
/// from the attribute to the end of the item it gates.
fn mark_test_regions(code: &[String]) -> Vec<bool> {
    let mut in_test = vec![false; code.len()];
    let mut depth: i64 = 0;
    let mut skip_at: Option<i64> = None;
    let mut pending = false;
    for (ln, line) in code.iter().enumerate() {
        let mut line_test = skip_at.is_some() || pending;
        if line.contains("#[cfg(test)]") || line.contains("#[cfg(all(test") {
            pending = true;
            line_test = true;
        }
        for ch in line.chars() {
            match ch {
                '{' => {
                    if pending && skip_at.is_none() {
                        skip_at = Some(depth);
                        pending = false;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if skip_at == Some(depth) {
                        skip_at = None;
                    }
                }
                // `#[cfg(test)] use x;` — the attribute gates a
                // braceless item; the semicolon ends it.
                ';' if pending && skip_at.is_none() => pending = false,
                _ => {}
            }
            if skip_at.is_some() {
                line_test = true;
            }
        }
        in_test[ln] = line_test;
    }
    in_test
}

const ATOMIC_ORDERINGS: [&str; 5] = [
    "Ordering::Relaxed",
    "Ordering::Acquire",
    "Ordering::Release",
    "Ordering::AcqRel",
    "Ordering::SeqCst",
];

/// How many lines above an atomic op a `// ordering:` comment still
/// counts as covering it.
const ORDERING_LOOKBACK: usize = 6;

/// Rule 1: atomic `Ordering::` uses outside `crates/sync` need a nearby
/// `// ordering:` justification comment.
pub fn check_ordering_justified(rel: &Path, s: &Stripped, out: &mut Vec<Violation>) {
    if rel.starts_with("crates/sync") {
        return;
    }
    for (ln, line) in s.code.iter().enumerate() {
        if s.in_test[ln] || !ATOMIC_ORDERINGS.iter().any(|o| line.contains(o)) {
            continue;
        }
        let lo = ln.saturating_sub(ORDERING_LOOKBACK);
        let justified = (lo..=ln).any(|k| s.comments[k].contains("ordering:"));
        if !justified {
            out.push(Violation {
                file: rel.to_path_buf(),
                line: ln + 1,
                rule: "ordering-justified",
                msg: "atomic memory ordering without a `// ordering:` justification comment \
                      within the preceding 6 lines"
                    .into(),
            });
        }
    }
}

/// Crates whose non-test code must reach sync primitives through
/// `parj_sync` so loom models cover them.
pub const SHIMMED: [&str; 7] = [
    "crates/core",
    "crates/obs",
    "crates/dict",
    "crates/store",
    "crates/join",
    "crates/cache",
    "crates/server",
];

/// Rule 2: no direct `std::sync` / `std::thread` in shimmed crates'
/// non-test code.
pub fn check_no_raw_sync(rel: &Path, s: &Stripped, out: &mut Vec<Violation>) {
    if !SHIMMED.iter().any(|c| rel.starts_with(c)) {
        return;
    }
    // Integration tests, benches and examples are test-only by
    // construction; the shim rule only guards shipped code under src/.
    if !rel.components().any(|c| c.as_os_str() == "src") {
        return;
    }
    for (ln, line) in s.code.iter().enumerate() {
        if s.in_test[ln] {
            continue;
        }
        for needle in ["std::sync", "std::thread"] {
            if line.contains(needle) {
                out.push(Violation {
                    file: rel.to_path_buf(),
                    line: ln + 1,
                    rule: "no-raw-sync",
                    msg: format!(
                        "direct `{needle}` in a parj-sync-shimmed crate; use `parj_sync::*` \
                         so `cfg(loom)` models cover this edge"
                    ),
                });
            }
        }
    }
}

/// Join hot-path files: per-row code where a panic would tear down a
/// worker instead of producing an `ExecFailure`. The delta store's
/// merge iterators qualify since PR 8: `_view` executor variants probe
/// through them on every morsel.
const HOT_PATH: [&str; 4] = [
    "crates/join/src/exec.rs",
    "crates/join/src/search.rs",
    "crates/join/src/rows.rs",
    "crates/store/src/delta.rs",
];

const PANICKY: [&str; 6] = [
    ".unwrap()",
    ".expect(",
    "panic!",
    "unreachable!",
    "todo!",
    "unimplemented!",
];

/// Rule 3: no panicking calls in the join hot path's non-test code.
/// (`unwrap_or*` are fine — the patterns are written to miss them.)
pub fn check_hot_path_no_panic(rel: &Path, s: &Stripped, out: &mut Vec<Violation>) {
    let rel_str = rel.to_string_lossy();
    if !HOT_PATH.iter().any(|h| rel_str == *h) {
        return;
    }
    for (ln, line) in s.code.iter().enumerate() {
        if s.in_test[ln] {
            continue;
        }
        for needle in PANICKY {
            if line.contains(needle) {
                out.push(Violation {
                    file: rel.to_path_buf(),
                    line: ln + 1,
                    rule: "hot-path-no-panic",
                    msg: format!(
                        "`{needle}` in the join hot path; surface the failure as an \
                         `ExecFailure` instead"
                    ),
                });
            }
        }
    }
}

/// Rule 4: `#[allow(dead_code)]` needs an adjacent comment explaining
/// why the code is kept.
pub fn check_dead_code_reason(rel: &Path, s: &Stripped, out: &mut Vec<Violation>) {
    for (ln, line) in s.code.iter().enumerate() {
        if !line.contains("#[allow(dead_code)]") {
            continue;
        }
        let same = !s.comments[ln].trim().is_empty();
        let above = ln > 0 && !s.comments[ln - 1].trim().is_empty();
        if !same && !above {
            out.push(Violation {
                file: rel.to_path_buf(),
                line: ln + 1,
                rule: "dead-code-reason",
                msg: "`#[allow(dead_code)]` without an adjacent comment saying why".into(),
            });
        }
    }
}

/// The store-generation protocol surface: reading the counter and
/// bumping it on store rebuilds.
const GENERATION_TOKENS: [&str; 2] = ["store_generation", "bump_generation"];

/// Crates allowed to touch the generation protocol: the cache that
/// defines it, and the engine that drives it from `finalize()`.
const GENERATION_CRATES: [&str; 2] = ["crates/cache", "crates/core"];

/// Rule 5: the cache-invalidation generation counter is read and bumped
/// only inside `crates/cache` / `crates/core`. Any other crate touching
/// it sits outside the engine's `&self`-borrow reasoning and could
/// serve or stamp answers across a store rebuild.
pub fn check_generation_boundary(rel: &Path, s: &Stripped, out: &mut Vec<Violation>) {
    if GENERATION_CRATES.iter().any(|c| rel.starts_with(c)) {
        return;
    }
    // The linter itself names the tokens it bans.
    if rel.starts_with("crates/xtask") {
        return;
    }
    for (ln, line) in s.code.iter().enumerate() {
        for needle in GENERATION_TOKENS {
            if line.contains(needle) {
                out.push(Violation {
                    file: rel.to_path_buf(),
                    line: ln + 1,
                    rule: "generation-boundary",
                    msg: format!(
                        "`{needle}` outside crates/cache and crates/core; the store-generation \
                         protocol is owned by the cache and driven only by the engine"
                    ),
                });
            }
        }
    }
}

/// The single file allowed to contain `unsafe` and `std::arch`: the
/// block codec's SIMD kernels. Everything else in the workspace is
/// `deny(unsafe_code)` and must stay that way.
const UNSAFE_ALLOWED: &str = "crates/store/src/codec.rs";

/// Runtime feature-detection macros that justify an intrinsic call.
const DETECTION_MACROS: [&str; 2] = ["is_x86_feature_detected!", "is_aarch64_feature_detected!"];

/// How many lines above an `unsafe {}` call site a detection macro
/// still counts as guarding it (detection, SAFETY comment, call).
const DETECT_LOOKBACK: usize = 4;

/// True when `line` contains `unsafe` as a standalone keyword (not as a
/// fragment of an identifier like `unsafe_code`).
fn has_unsafe_keyword(line: &str) -> bool {
    let bytes = line.as_bytes();
    let mut from = 0;
    while let Some(at) = line[from..].find("unsafe") {
        let start = from + at;
        let end = start + "unsafe".len();
        let word = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
        let left_ok = start == 0 || !word(bytes[start - 1]);
        let right_ok = end >= bytes.len() || !word(bytes[end]);
        if left_ok && right_ok {
            return true;
        }
        from = end;
    }
    false
}

/// Rule 6: `unsafe` / `std::arch` are confined to the codec module, and
/// inside it every `unsafe fn` must be a `#[target_feature]` kernel and
/// every `unsafe {}` call site must follow a runtime feature-detection
/// check within the preceding few lines.
pub fn check_unsafe_confined(rel: &Path, s: &Stripped, out: &mut Vec<Violation>) {
    // The linter names the tokens it bans.
    if rel.starts_with("crates/xtask") {
        return;
    }
    let in_codec = rel.to_string_lossy() == UNSAFE_ALLOWED;
    for (ln, line) in s.code.iter().enumerate() {
        if s.in_test[ln] {
            continue;
        }
        if !in_codec {
            if has_unsafe_keyword(line) {
                out.push(Violation {
                    file: rel.to_path_buf(),
                    line: ln + 1,
                    rule: "unsafe-confined",
                    msg: format!(
                        "`unsafe` outside the audited SIMD codec module ({UNSAFE_ALLOWED}); \
                         the workspace is deny(unsafe_code)"
                    ),
                });
            }
            for needle in ["std::arch", "core::arch"] {
                if line.contains(needle) {
                    out.push(Violation {
                        file: rel.to_path_buf(),
                        line: ln + 1,
                        rule: "unsafe-confined",
                        msg: format!(
                            "`{needle}` outside the audited SIMD codec module ({UNSAFE_ALLOWED})"
                        ),
                    });
                }
            }
            continue;
        }
        if !has_unsafe_keyword(line) {
            continue;
        }
        if line.contains("unsafe fn") {
            // Kernel definitions: must be `#[target_feature]`-gated so
            // the compiler ties the intrinsics to the detected feature.
            let lo = ln.saturating_sub(3);
            let gated = (lo..ln).any(|k| s.code[k].contains("#[target_feature(enable"));
            if !gated {
                out.push(Violation {
                    file: rel.to_path_buf(),
                    line: ln + 1,
                    rule: "unsafe-confined",
                    msg: "`unsafe fn` in the codec module without a `#[target_feature(enable` \
                          attribute in the preceding 3 lines"
                        .into(),
                });
            }
        } else if line.contains("unsafe {") {
            // Call sites: runtime feature detection must sit right
            // above (same `if` arm) so the kernel never runs on a
            // machine that lacks the instruction set.
            let lo = ln.saturating_sub(DETECT_LOOKBACK);
            let detected =
                (lo..=ln).any(|k| DETECTION_MACROS.iter().any(|m| s.code[k].contains(m)));
            if !detected {
                out.push(Violation {
                    file: rel.to_path_buf(),
                    line: ln + 1,
                    rule: "unsafe-confined",
                    msg: format!(
                        "`unsafe {{}}` call site without a runtime feature-detection macro \
                         within the preceding {DETECT_LOOKBACK} lines"
                    ),
                });
            }
        } else if !line.contains("allow(unsafe_code)") {
            out.push(Violation {
                file: rel.to_path_buf(),
                line: ln + 1,
                rule: "unsafe-confined",
                msg: "unexpected `unsafe` form in the codec module; only `#[target_feature]` \
                      `unsafe fn` kernels and detection-guarded `unsafe {}` call sites are \
                      allowed"
                    .into(),
            });
        }
    }
}

/// Runs every rule over one file's source.
pub fn check_file(rel: &Path, src: &str) -> Vec<Violation> {
    let s = strip(src);
    let mut out = Vec::new();
    check_ordering_justified(rel, &s, &mut out);
    check_no_raw_sync(rel, &s, &mut out);
    check_hot_path_no_panic(rel, &s, &mut out);
    check_dead_code_reason(rel, &s, &mut out);
    check_generation_boundary(rel, &s, &mut out);
    check_unsafe_confined(rel, &s, &mut out);
    out
}

/// Collects `.rs` files under `root/crates`, skipping build output.
pub(crate) fn rust_files(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let mut stack = vec![root.join("crates")];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for e in entries.flatten() {
            let p = e.path();
            if p.is_dir() {
                if p.file_name().is_some_and(|n| n == "target") {
                    continue;
                }
                stack.push(p);
            } else if p.extension().is_some_and(|x| x == "rs") {
                files.push(p);
            }
        }
    }
    files.sort();
    files
}

/// Lints the whole workspace rooted at `root`.
pub fn run(root: &Path) -> Vec<Violation> {
    let mut out = Vec::new();
    for path in rust_files(root) {
        let Ok(src) = std::fs::read_to_string(&path) else {
            continue;
        };
        let rel = path.strip_prefix(root).unwrap_or(&path);
        out.extend(check_file(rel, &src));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strip_code(src: &str) -> Vec<String> {
        strip(src).code
    }

    #[test]
    fn strings_and_comments_are_blanked() {
        let code = strip_code(
            "let x = \"Ordering::Relaxed\"; // Ordering::SeqCst\nlet y = 1; /* std::sync */",
        );
        assert!(!code[0].contains("Ordering::"), "{:?}", code[0]);
        assert!(!code[1].contains("std::sync"), "{:?}", code[1]);
        let s = strip("// ordering: because\nx.load(Ordering::Relaxed);");
        assert!(s.comments[0].contains("ordering: because"));
        assert!(s.code[1].contains("Ordering::Relaxed"));
    }

    #[test]
    fn raw_strings_and_chars_are_blanked() {
        let code = strip_code("let p = r#\"panic!(\"x\")\"#; let c = '\\''; let l: &'static str;");
        assert!(!code[0].contains("panic!"), "{:?}", code[0]);
        assert!(code[0].contains("&'static"), "{:?}", code[0]);
        let code = strip_code("let b = b\".unwrap()\";");
        assert!(!code[0].contains(".unwrap()"), "{:?}", code[0]);
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let s = strip("/* outer /* inner */ still comment */ let x = 1;");
        assert!(s.code[0].contains("let x = 1"));
        assert!(!s.code[0].contains("still comment"));
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let s = strip(
            "fn live() { x.load(Ordering::Relaxed); }\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 use std::sync::Arc;\n\
                 fn t() { panic!(); }\n\
             }\n\
             fn after() {}\n",
        );
        assert!(!s.in_test[0]);
        assert!(s.in_test[1] && s.in_test[2] && s.in_test[3] && s.in_test[4] && s.in_test[5]);
        assert!(!s.in_test[6]);
    }

    #[test]
    fn cfg_test_on_braceless_item_ends_at_semicolon() {
        let s = strip("#[cfg(test)]\nuse foo::bar;\nfn live() { let x = vec![1]; }\n");
        assert!(s.in_test[0] && s.in_test[1]);
        assert!(!s.in_test[2]);
    }

    #[test]
    fn unjustified_ordering_is_flagged_and_justified_passes() {
        let bad = check_file(
            Path::new("crates/obs/src/metrics.rs"),
            "fn f(a: &AtomicU64) { a.load(Ordering::Relaxed); }",
        );
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert_eq!(bad[0].rule, "ordering-justified");
        assert_eq!(bad[0].line, 1);

        let good = check_file(
            Path::new("crates/obs/src/metrics.rs"),
            "fn f(a: &AtomicU64) {\n    // ordering: Relaxed — counter only\n    a.load(Ordering::Relaxed);\n}",
        );
        assert!(good.is_empty(), "{good:?}");

        // parj-sync itself is exempt (it *defines* the shim).
        let sync = check_file(
            Path::new("crates/sync/src/lib.rs"),
            "fn f(a: &AtomicU64) { a.load(Ordering::SeqCst); }",
        );
        assert!(sync.is_empty(), "{sync:?}");

        // cmp::Ordering variants don't trip the atomic rule.
        let cmp = check_file(
            Path::new("crates/store/src/store.rs"),
            "fn f() -> Ordering { Ordering::Less }",
        );
        assert!(cmp.is_empty(), "{cmp:?}");
    }

    #[test]
    fn raw_sync_in_shimmed_crate_is_flagged() {
        let bad = check_file(
            Path::new("crates/core/src/engine.rs"),
            "use std::sync::Arc;\nfn f() { std::thread::spawn(|| {}); }",
        );
        assert_eq!(bad.len(), 2, "{bad:?}");
        assert!(bad.iter().all(|v| v.rule == "no-raw-sync"));

        // Same code inside #[cfg(test)] is fine.
        let good = check_file(
            Path::new("crates/core/src/engine.rs"),
            "#[cfg(test)]\nmod tests {\n    use std::sync::Arc;\n}",
        );
        assert!(good.is_empty(), "{good:?}");

        // Unshimmed crates may use std directly.
        let other = check_file(
            Path::new("crates/baseline/src/engines.rs"),
            "use std::sync::Arc;",
        );
        assert!(other.is_empty(), "{other:?}");

        // Integration tests under tests/ are exempt.
        let test_file = check_file(
            Path::new("crates/core/tests/shim_equivalence.rs"),
            "use std::sync::Arc;",
        );
        assert!(test_file.is_empty(), "{test_file:?}");

        // The serving layer joined the shimmed set with the lock
        // hierarchy: its admission locks must be loom-modelable.
        let server = check_file(
            Path::new("crates/server/src/admission.rs"),
            "use std::sync::Mutex;",
        );
        assert_eq!(server.len(), 1, "{server:?}");
        assert_eq!(server[0].rule, "no-raw-sync");
    }

    #[test]
    fn hot_path_panics_are_flagged_but_unwrap_or_is_not() {
        let bad = check_file(
            Path::new("crates/join/src/exec.rs"),
            "fn f(x: Option<u32>) -> u32 { x.unwrap() }",
        );
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert_eq!(bad[0].rule, "hot-path-no-panic");

        let good = check_file(
            Path::new("crates/join/src/exec.rs"),
            "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }\nfn g(x: Result<u32, u32>) -> u32 { x.unwrap_or_else(|e| e) }",
        );
        assert!(good.is_empty(), "{good:?}");

        // Other files may panic (their panics are caught at the exec
        // boundary).
        let other = check_file(
            Path::new("crates/join/src/plan.rs"),
            "fn f(x: Option<u32>) -> u32 { x.unwrap() }",
        );
        assert!(other.is_empty(), "{other:?}");

        // The delta merge iterators are hot path since the executor's
        // `_view` variants probe through them per morsel.
        let delta = check_file(
            Path::new("crates/store/src/delta.rs"),
            "fn f(x: Option<u32>) -> u32 { x.expect(\"present\") }",
        );
        assert_eq!(delta.len(), 1, "{delta:?}");
        assert_eq!(delta[0].rule, "hot-path-no-panic");
    }

    #[test]
    fn dead_code_allow_needs_a_reason() {
        let bad = check_file(Path::new("crates/core/src/x.rs"), "#[allow(dead_code)]\nfn f() {}");
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert_eq!(bad[0].rule, "dead-code-reason");

        let good = check_file(
            Path::new("crates/core/src/x.rs"),
            "// kept for the next PR's public API\n#[allow(dead_code)]\nfn f() {}",
        );
        assert!(good.is_empty(), "{good:?}");
    }

    #[test]
    fn generation_tokens_are_fenced_to_cache_and_core() {
        let bad = check_file(
            Path::new("crates/cli/src/main.rs"),
            "fn f(c: &QueryCache) -> u64 { c.store_generation() }",
        );
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert_eq!(bad[0].rule, "generation-boundary");

        let bump = check_file(
            Path::new("crates/bench/src/lib.rs"),
            "fn f(c: &QueryCache) { c.bump_generation(); }",
        );
        assert_eq!(bump.len(), 1, "{bump:?}");

        // The owning crates may touch the protocol freely.
        for ok_path in ["crates/cache/src/lib.rs", "crates/core/src/engine.rs"] {
            let good = check_file(
                Path::new(ok_path),
                "fn f(c: &QueryCache) -> u64 { c.bump_generation(); c.store_generation() }",
            );
            assert!(good.is_empty(), "{good:?}");
        }

        // Mentions in comments and strings don't count.
        let comment = check_file(
            Path::new("crates/join/src/plan.rs"),
            "// store_generation is owned by parj-cache\nfn f() {}",
        );
        assert!(comment.is_empty(), "{comment:?}");
    }

    #[test]
    fn unsafe_is_confined_to_the_codec_module() {
        // `unsafe` anywhere else is flagged, keyword-precisely: the
        // `deny(unsafe_code)` attribute itself must not trip the rule.
        let bad = check_file(
            Path::new("crates/join/src/exec.rs"),
            "fn f(p: *const u32) -> u32 { unsafe { *p } }",
        );
        assert!(bad.iter().any(|v| v.rule == "unsafe-confined"), "{bad:?}");

        let attr = check_file(
            Path::new("crates/store/src/lib.rs"),
            "#![deny(unsafe_code)]\nfn f() {}",
        );
        assert!(attr.is_empty(), "{attr:?}");

        let arch = check_file(
            Path::new("crates/join/src/search.rs"),
            "fn f() { let _ = std::arch::is_x86_feature_detected!(\"sse2\"); }",
        );
        assert!(arch.iter().any(|v| v.rule == "unsafe-confined"), "{arch:?}");
    }

    #[test]
    fn codec_unsafe_needs_target_feature_and_detection() {
        let codec = Path::new("crates/store/src/codec.rs");
        // A properly gated kernel + detected call site is clean.
        let good = check_file(
            codec,
            "#[cfg(target_arch = \"x86_64\")]\n\
             #[target_feature(enable = \"sse2\")]\n\
             unsafe fn kern(x: &mut [u32]) {}\n\
             fn call(x: &mut [u32]) {\n\
                 if is_x86_feature_detected!(\"sse2\") {\n\
                     // SAFETY: sse2 verified above\n\
                     unsafe { kern(x) };\n\
                 }\n\
             }\n",
        );
        assert!(good.is_empty(), "{good:?}");

        // Kernel without #[target_feature] is flagged.
        let bare_fn = check_file(codec, "unsafe fn kern(x: &mut [u32]) {}\n");
        assert_eq!(bare_fn.len(), 1, "{bare_fn:?}");
        assert_eq!(bare_fn[0].rule, "unsafe-confined");

        // Call site without a nearby detection macro is flagged.
        let bare_call = check_file(
            codec,
            "fn call(x: &mut [u32]) {\n    unsafe { kern(x) };\n}\n",
        );
        assert_eq!(bare_call.len(), 1, "{bare_call:?}");
        assert_eq!(bare_call[0].rule, "unsafe-confined");
        assert_eq!(bare_call[0].line, 2);

        // Any other unsafe form (e.g. `unsafe impl`) is flagged too.
        let other = check_file(codec, "unsafe impl Send for X {}\n");
        assert_eq!(other.len(), 1, "{other:?}");
    }

    #[test]
    fn workspace_tree_is_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let violations = run(&root);
        assert!(
            violations.is_empty(),
            "workspace lint violations:\n{}",
            violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
