//! `cargo xtask locks` — the static half of the lock-hierarchy
//! enforcement layer (DESIGN.md §17).
//!
//! Three checks over the same stripped-source view `lint.rs` uses:
//!
//! 1. `locks-raw-type` — product crates (the shimmed set) may not name
//!    raw `Mutex`/`RwLock`/`Condvar` (or their guard types) in non-test
//!    code: every lock goes through the `parj_sync` ordered wrappers,
//!    which carry a declared [`LockLevel`] the runtime witness
//!    enforces. Identifier-boundary matching keeps `OrderedMutex` and
//!    friends clean.
//! 2. `locks-level-declared` — every `Ordered{Mutex,RwLock,Condvar}::new`
//!    call site must pass a `LockLevel::` within a few lines, and the
//!    variant it names must exist in the hierarchy.
//! 3. `locks-hierarchy` — the `LockLevel` enum in
//!    `crates/sync/src/ordered.rs` must declare pairwise-distinct
//!    numeric values (a duplicate collapses two levels into an
//!    unordered — cyclic — pair) and must match the lock table in
//!    DESIGN.md §17 exactly, so the documented hierarchy can never
//!    drift from the enforced one.
//!
//! [`LockLevel`]: https://docs.rs/parj-sync

use std::path::{Path, PathBuf};

use crate::lint::{strip, Stripped, Violation, SHIMMED};

/// Raw synchronization type names banned from product-crate code; the
/// ordered wrappers (and `parj_sync::Ordered*` guards) replace them.
const RAW_LOCK_TYPES: [&str; 6] = [
    "Mutex",
    "RwLock",
    "Condvar",
    "MutexGuard",
    "RwLockReadGuard",
    "RwLockWriteGuard",
];

/// Wrapper constructors that must carry a `LockLevel`.
const ORDERED_CTORS: [&str; 3] = [
    "OrderedMutex::new(",
    "OrderedRwLock::new(",
    "OrderedCondvar::new(",
];

/// Lines after a ctor in which its `LockLevel::` argument must appear
/// (multi-line formatting puts the level on the next line or two).
const LEVEL_LOOKAHEAD: usize = 3;

/// True when `line[idx..idx+len]` is a standalone identifier (not a
/// tail or head of a longer one, e.g. `Mutex` inside `OrderedMutex`).
fn ident_boundary(line: &str, idx: usize, len: usize) -> bool {
    let bytes = line.as_bytes();
    let is_ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let before_ok = idx == 0 || !is_ident(bytes[idx - 1]);
    let after_ok = idx + len >= bytes.len() || !is_ident(bytes[idx + len]);
    before_ok && after_ok
}

/// Every standalone occurrence of `needle` in `line`.
fn ident_occurrences(line: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = line[from..].find(needle) {
        let idx = from + pos;
        if ident_boundary(line, idx, needle.len()) {
            out.push(idx);
        }
        from = idx + needle.len();
    }
    out
}

/// Check 1: no raw lock types in product-crate non-test code.
pub fn check_raw_lock_types(rel: &Path, s: &Stripped, out: &mut Vec<Violation>) {
    if !SHIMMED.iter().any(|c| rel.starts_with(c)) {
        return;
    }
    // Like lint Rule 2: only shipped code under src/ — integration
    // tests, benches and examples may lock however they like.
    if !rel.components().any(|c| c.as_os_str() == "src") {
        return;
    }
    for (ln, line) in s.code.iter().enumerate() {
        if s.in_test[ln] {
            continue;
        }
        for raw in RAW_LOCK_TYPES {
            if !ident_occurrences(line, raw).is_empty() {
                out.push(Violation {
                    file: rel.to_path_buf(),
                    line: ln + 1,
                    rule: "locks-raw-type",
                    msg: format!(
                        "raw `{raw}` in a product crate; use \
                         `parj_sync::Ordered{base}` with a declared `LockLevel` so the \
                         lock-order witness covers it",
                        base = raw
                            .strip_suffix("Guard")
                            .map(|g| g.strip_suffix("Read").or(g.strip_suffix("Write")).unwrap_or(g))
                            .unwrap_or(raw),
                    ),
                });
            }
        }
    }
}

/// Check 2: ordered-wrapper construction declares a known level nearby.
pub fn check_level_declared(
    rel: &Path,
    s: &Stripped,
    known_levels: &[(String, u8)],
    out: &mut Vec<Violation>,
) {
    if !SHIMMED.iter().any(|c| rel.starts_with(c)) || rel.starts_with("crates/sync") {
        return;
    }
    for (ln, line) in s.code.iter().enumerate() {
        if s.in_test[ln] || !ORDERED_CTORS.iter().any(|c| line.contains(c)) {
            continue;
        }
        let hi = (ln + LEVEL_LOOKAHEAD).min(s.code.len() - 1);
        let window: Vec<&String> = s.code[ln..=hi].iter().collect();
        let named: Vec<String> = window
            .iter()
            .flat_map(|l| level_refs(l))
            .collect();
        if named.is_empty() {
            out.push(Violation {
                file: rel.to_path_buf(),
                line: ln + 1,
                rule: "locks-level-declared",
                msg: "ordered lock constructed without a `LockLevel::` argument within \
                      reach; declare its place in the hierarchy"
                    .into(),
            });
            continue;
        }
        for name in named {
            if !known_levels.iter().any(|(n, _)| *n == name) {
                out.push(Violation {
                    file: rel.to_path_buf(),
                    line: ln + 1,
                    rule: "locks-level-declared",
                    msg: format!(
                        "`LockLevel::{name}` is not declared in the hierarchy \
                         (crates/sync/src/ordered.rs)"
                    ),
                });
            }
        }
    }
}

/// `LockLevel::X` variant references on one code line.
fn level_refs(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    for idx in ident_occurrences(line, "LockLevel") {
        let rest = &line[idx + "LockLevel".len()..];
        if let Some(var) = rest.strip_prefix("::") {
            let name: String = var
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            // Associated items (`ALL`, `as_str`...) are not variants.
            if !name.is_empty() && name.chars().next().is_some_and(char::is_uppercase) && name != "ALL"
            {
                out.push(name);
            }
        }
    }
    out
}

/// Parses the `LockLevel` enum declaration out of
/// `crates/sync/src/ordered.rs`: `(variant, value)` in declaration
/// order.
pub fn parse_hierarchy(ordered_src: &str) -> Vec<(String, u8)> {
    let s = strip(ordered_src);
    let mut in_enum = false;
    let mut levels = Vec::new();
    for line in &s.code {
        if line.contains("pub enum LockLevel") {
            in_enum = true;
            continue;
        }
        if in_enum {
            let t = line.trim();
            if t.starts_with('}') {
                break;
            }
            // Variant shape: `Name = 42,`
            if let Some((name, rest)) = t.split_once('=') {
                let name = name.trim();
                let value = rest.trim().trim_end_matches(',').trim();
                if name.chars().all(|c| c.is_ascii_alphanumeric()) && !name.is_empty() {
                    if let Ok(v) = value.parse::<u8>() {
                        levels.push((name.to_string(), v));
                    }
                }
            }
        }
    }
    levels
}

/// Check 3a: the declared hierarchy is a strict total order — every
/// level value pairwise distinct. Two locks sharing a value could each
/// be "outer" to the other depending on call site: an unordered, i.e.
/// cyclic, declaration.
pub fn check_hierarchy_acyclic(levels: &[(String, u8)], out: &mut Vec<Violation>) {
    for (i, (name_a, v_a)) in levels.iter().enumerate() {
        for (name_b, v_b) in &levels[i + 1..] {
            if v_a == v_b {
                out.push(Violation {
                    file: PathBuf::from("crates/sync/src/ordered.rs"),
                    line: 0,
                    rule: "locks-hierarchy",
                    msg: format!(
                        "cyclic level declaration: `{name_a}` and `{name_b}` share value \
                         {v_a}; same-value locks have no acquisition order"
                    ),
                });
            }
            if name_a == name_b {
                out.push(Violation {
                    file: PathBuf::from("crates/sync/src/ordered.rs"),
                    line: 0,
                    rule: "locks-hierarchy",
                    msg: format!("duplicate level name `{name_a}`"),
                });
            }
        }
    }
    if levels.is_empty() {
        out.push(Violation {
            file: PathBuf::from("crates/sync/src/ordered.rs"),
            line: 0,
            rule: "locks-hierarchy",
            msg: "no LockLevel hierarchy found".into(),
        });
    }
}

/// Parses the DESIGN.md §17 lock table: rows are
/// `| <value> | \`Variant\` | ... |`. Returns `(variant, value)` pairs.
pub fn parse_design_table(design_md: &str) -> Vec<(String, u8)> {
    let mut in_section = false;
    let mut levels = Vec::new();
    for line in design_md.lines() {
        if line.starts_with("## ") {
            in_section = line.starts_with("## 17.") || line.contains("§17");
            continue;
        }
        if !in_section || !line.trim_start().starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = line.trim().trim_matches('|').split('|').collect();
        if cells.len() < 2 {
            continue;
        }
        let Ok(value) = cells[0].trim().parse::<u8>() else {
            continue; // header / separator rows
        };
        let name = cells[1].trim().trim_matches('`');
        if !name.is_empty() {
            levels.push((name.to_string(), value));
        }
    }
    levels
}

/// Check 3b: the enum and the DESIGN.md table agree exactly.
pub fn check_design_matches(
    enum_levels: &[(String, u8)],
    design_levels: &[(String, u8)],
    out: &mut Vec<Violation>,
) {
    for (name, v) in enum_levels {
        match design_levels.iter().find(|(n, _)| n == name) {
            None => out.push(Violation {
                file: PathBuf::from("DESIGN.md"),
                line: 0,
                rule: "locks-hierarchy",
                msg: format!("level `{name}` ({v}) missing from the DESIGN.md §17 lock table"),
            }),
            Some((_, dv)) if dv != v => out.push(Violation {
                file: PathBuf::from("DESIGN.md"),
                line: 0,
                rule: "locks-hierarchy",
                msg: format!(
                    "level `{name}` is {v} in code but {dv} in the DESIGN.md §17 table"
                ),
            }),
            Some(_) => {}
        }
    }
    for (name, _) in design_levels {
        if !enum_levels.iter().any(|(n, _)| n == name) {
            out.push(Violation {
                file: PathBuf::from("DESIGN.md"),
                line: 0,
                rule: "locks-hierarchy",
                msg: format!(
                    "table row `{name}` has no matching LockLevel variant in \
                     crates/sync/src/ordered.rs"
                ),
            });
        }
    }
}

/// Runs checks 1–2 over one file's source.
pub fn check_file(rel: &Path, src: &str, known_levels: &[(String, u8)]) -> Vec<Violation> {
    let s = strip(src);
    let mut out = Vec::new();
    check_raw_lock_types(rel, &s, &mut out);
    check_level_declared(rel, &s, known_levels, &mut out);
    out
}

/// Runs the whole pass over the workspace rooted at `root`.
pub fn run(root: &Path) -> Vec<Violation> {
    let mut out = Vec::new();
    let ordered_path = root.join("crates/sync/src/ordered.rs");
    let levels = match std::fs::read_to_string(&ordered_path) {
        Ok(src) => parse_hierarchy(&src),
        Err(_) => Vec::new(),
    };
    check_hierarchy_acyclic(&levels, &mut out);
    match std::fs::read_to_string(root.join("DESIGN.md")) {
        Ok(md) => check_design_matches(&levels, &parse_design_table(&md), &mut out),
        Err(_) => out.push(Violation {
            file: PathBuf::from("DESIGN.md"),
            line: 0,
            rule: "locks-hierarchy",
            msg: "DESIGN.md not found; the §17 lock table is required".into(),
        }),
    }
    for path in crate::lint::rust_files(root) {
        let Ok(src) = std::fs::read_to_string(&path) else {
            continue;
        };
        let rel = path.strip_prefix(root).unwrap_or(&path);
        out.extend(check_file(rel, &src, &levels));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const LEVELS: &[(&str, u8)] = &[("Server", 90), ("Engine", 70), ("Metrics", 10)];

    fn levels() -> Vec<(String, u8)> {
        LEVELS.iter().map(|&(n, v)| (n.to_string(), v)).collect()
    }

    #[test]
    fn raw_mutex_in_product_crate_is_flagged() {
        let bad = check_file(
            Path::new("crates/server/src/admission.rs"),
            "struct S { m: Mutex<u32> }",
            &levels(),
        );
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert_eq!(bad[0].rule, "locks-raw-type");
        // The message points at the ordered replacement.
        assert!(bad[0].msg.contains("OrderedMutex"), "{}", bad[0].msg);
    }

    #[test]
    fn ordered_wrappers_do_not_trip_the_raw_rule() {
        let good = check_file(
            Path::new("crates/core/src/shared.rs"),
            "struct S { m: OrderedMutex<u32>, r: OrderedRwLock<u8>, c: OrderedCondvar }\n\
             fn f(g: OrderedMutexGuard<'_, u32>, h: OrderedRwLockReadGuard<'_, u8>) {}\n\
             fn ctor() -> OrderedMutex<u32> { OrderedMutex::new(LockLevel::Engine, \"x\", 0) }",
            &levels(),
        );
        assert!(good.is_empty(), "{good:?}");
    }

    #[test]
    fn guard_types_and_condvar_are_also_banned_raw() {
        let bad = check_file(
            Path::new("crates/join/src/pool.rs"),
            "fn f(g: MutexGuard<'_, u32>) {}\nstruct C { c: Condvar }",
            &levels(),
        );
        assert_eq!(bad.len(), 2, "{bad:?}");
        assert!(bad.iter().all(|v| v.rule == "locks-raw-type"));
    }

    #[test]
    fn non_product_crates_and_tests_are_exempt() {
        let cli = check_file(
            Path::new("crates/cli/src/main.rs"),
            "use std::sync::Mutex;\nstatic M: Mutex<u32> = Mutex::new(0);",
            &levels(),
        );
        assert!(cli.is_empty(), "{cli:?}");
        let test_code = check_file(
            Path::new("crates/core/src/engine.rs"),
            "#[cfg(test)]\nmod tests {\n    use std::sync::Mutex;\n    static M: Mutex<u32> = Mutex::new(0);\n}",
            &levels(),
        );
        assert!(test_code.is_empty(), "{test_code:?}");
        let integration = check_file(
            Path::new("crates/core/tests/shim_equivalence.rs"),
            "static M: std::sync::Mutex<u32> = std::sync::Mutex::new(0);",
            &levels(),
        );
        assert!(integration.is_empty(), "{integration:?}");
    }

    #[test]
    fn ctor_without_level_is_flagged() {
        let bad = check_file(
            Path::new("crates/cache/src/lib.rs"),
            "fn f() -> OrderedMutex<u32> { OrderedMutex::new(level_of(), \"x\", 0) }",
            &levels(),
        );
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert_eq!(bad[0].rule, "locks-level-declared");
    }

    #[test]
    fn ctor_with_level_on_a_following_line_passes() {
        let good = check_file(
            Path::new("crates/cache/src/lib.rs"),
            "fn f() -> OrderedMutex<u32> {\n    OrderedMutex::new(\n        LockLevel::Engine,\n        \"x\",\n        0,\n    )\n}",
            &levels(),
        );
        assert!(good.is_empty(), "{good:?}");
    }

    #[test]
    fn unknown_level_variant_is_flagged() {
        let bad = check_file(
            Path::new("crates/cache/src/lib.rs"),
            "fn f() -> OrderedMutex<u32> { OrderedMutex::new(LockLevel::Imaginary, \"x\", 0) }",
            &levels(),
        );
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(bad[0].msg.contains("Imaginary"), "{}", bad[0].msg);
    }

    #[test]
    fn hierarchy_parses_from_enum_source() {
        let src = "pub enum LockLevel {\n    /// doc\n    Server = 90,\n    Engine = 70,\n}\n";
        let levels = parse_hierarchy(src);
        assert_eq!(
            levels,
            vec![("Server".to_string(), 90), ("Engine".to_string(), 70)]
        );
    }

    #[test]
    fn duplicate_level_values_are_a_cycle() {
        let mut out = Vec::new();
        check_hierarchy_acyclic(
            &[("A".to_string(), 10), ("B".to_string(), 10)],
            &mut out,
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "locks-hierarchy");
        assert!(out[0].msg.contains("cyclic"), "{}", out[0].msg);
    }

    #[test]
    fn design_table_roundtrip_and_mismatch() {
        let md = "## §17 Lock hierarchy\n\n\
                  | Level | Name | Lock | Crate |\n\
                  |---|---|---|---|\n\
                  | 90 | `Server` | `server.live_tokens` | parj-server |\n\
                  | 70 | `Engine` | `engine.shared` | parj-core |\n\n\
                  ## §18 Other\n| 1 | `Bogus` |\n";
        let parsed = parse_design_table(md);
        assert_eq!(
            parsed,
            vec![("Server".to_string(), 90), ("Engine".to_string(), 70)]
        );

        let mut out = Vec::new();
        check_design_matches(
            &[("Server".to_string(), 90), ("Engine".to_string(), 70)],
            &parsed,
            &mut out,
        );
        assert!(out.is_empty(), "{out:?}");

        // Value drift is caught both ways.
        let mut out = Vec::new();
        check_design_matches(
            &[("Server".to_string(), 91), ("Cache".to_string(), 60)],
            &parsed,
            &mut out,
        );
        assert_eq!(out.len(), 3, "{out:?}"); // drifted, missing, extra
    }

    #[test]
    fn workspace_passes_the_locks_gate() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let violations = run(&root);
        assert!(
            violations.is_empty(),
            "workspace locks violations:\n{}",
            violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
