//! `cargo xtask` — workspace automation.
//!
//! Commands:
//!
//! * `cargo xtask lint` — run the custom lint gate over every crate
//!   (see [`lint`] for the rules). Exits nonzero when any rule fires,
//!   printing `path:line: [rule] message` per violation.
//! * `cargo xtask locks` — run the lock-hierarchy static pass (see
//!   [`locks`]): raw lock types are denied in product crates, every
//!   ordered lock declares a known `LockLevel`, and the declared
//!   hierarchy is acyclic and matches the DESIGN.md §17 lock table.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

mod lint;
mod locks;

/// Locates the workspace root: `CARGO_MANIFEST_DIR/../..` when built by
/// cargo, falling back to the current directory.
fn workspace_root() -> PathBuf {
    match std::env::var_os("CARGO_MANIFEST_DIR") {
        Some(d) => {
            // Pop components textually — `join("../..")` would need the
            // intermediate directories to exist on disk.
            let mut p = PathBuf::from(d);
            p.pop();
            p.pop();
            p
        }
        None => PathBuf::from("."),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let root = workspace_root();
            let violations = lint::run(&root);
            if violations.is_empty() {
                eprintln!("xtask lint: clean");
                ExitCode::SUCCESS
            } else {
                for v in &violations {
                    println!("{v}");
                }
                eprintln!("xtask lint: {} violation(s)", violations.len());
                ExitCode::FAILURE
            }
        }
        Some("locks") => {
            let root = workspace_root();
            let violations = locks::run(&root);
            if violations.is_empty() {
                eprintln!("xtask locks: clean");
                ExitCode::SUCCESS
            } else {
                for v in &violations {
                    println!("{v}");
                }
                eprintln!("xtask locks: {} violation(s)", violations.len());
                ExitCode::FAILURE
            }
        }
        _ => {
            eprintln!("usage: cargo xtask <lint|locks>");
            ExitCode::FAILURE
        }
    }
}
