//! End-to-end test of the `xtask lint` binary: exit 0 on a clean tree,
//! nonzero (with coordinates) on a seeded violation.

use std::process::Command;

fn xtask() -> Command {
    Command::new(env!("CARGO_BIN_EXE_xtask"))
}

#[test]
fn seeded_violation_fails_the_gate() {
    let root = std::env::temp_dir().join(format!("parj-xtask-test-{}", std::process::id()));
    let src = root.join("crates/core/src");
    std::fs::create_dir_all(&src).unwrap();
    std::fs::write(
        src.join("bad.rs"),
        "use std::sync::Arc;\nfn f(a: &AtomicU64) { a.load(Ordering::SeqCst); }\n",
    )
    .unwrap();

    // The binary resolves the workspace root from CARGO_MANIFEST_DIR;
    // point it two levels under the seeded tree.
    let out = xtask()
        .arg("lint")
        .env("CARGO_MANIFEST_DIR", root.join("crates/xtask"))
        .output()
        .unwrap();
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("no-raw-sync"), "{text}");
    assert!(text.contains("ordering-justified"), "{text}");
    assert!(text.contains("bad.rs:1"), "{text}");

    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn real_tree_passes_the_gate() {
    let out = xtask().arg("lint").output().unwrap();
    assert!(
        out.status.success(),
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = xtask().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}
