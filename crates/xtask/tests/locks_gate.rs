//! End-to-end test of the `xtask locks` binary: exit 0 on the real
//! (migrated) tree, nonzero with coordinates on seeded fixtures — a
//! raw `std::sync::Mutex` in a product crate, and a cyclic (duplicate
//! value) level declaration.

use std::process::Command;

fn xtask() -> Command {
    Command::new(env!("CARGO_BIN_EXE_xtask"))
}

/// A minimal fixture tree: a `LockLevel` enum, a DESIGN.md §17 table
/// matching it, and one product-crate source file.
fn seed_tree(tag: &str, enum_body: &str, table_rows: &str, product_src: &str) -> std::path::PathBuf {
    let root = std::env::temp_dir().join(format!("parj-locks-test-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    for dir in ["crates/sync/src", "crates/server/src", "crates/xtask"] {
        std::fs::create_dir_all(root.join(dir)).unwrap();
    }
    std::fs::write(
        root.join("crates/sync/src/ordered.rs"),
        format!("pub enum LockLevel {{\n{enum_body}}}\n"),
    )
    .unwrap();
    std::fs::write(
        root.join("DESIGN.md"),
        format!("## 17. Lock hierarchy\n\n| Level | Variant |\n|---|---|\n{table_rows}"),
    )
    .unwrap();
    std::fs::write(root.join("crates/server/src/admission.rs"), product_src).unwrap();
    root
}

fn run_locks(root: &std::path::Path) -> (bool, String) {
    let out = xtask()
        .arg("locks")
        .env("CARGO_MANIFEST_DIR", root.join("crates/xtask"))
        .output()
        .unwrap();
    (out.status.success(), String::from_utf8_lossy(&out.stdout).into_owned())
}

#[test]
fn raw_mutex_in_a_product_crate_fails_the_gate() {
    let root = seed_tree(
        "raw",
        "    Server = 90,\n",
        "| 90 | `Server` |\n",
        "use std::sync::Mutex;\nstruct S { m: Mutex<u32> }\n",
    );
    let (ok, text) = run_locks(&root);
    assert!(!ok);
    assert!(text.contains("locks-raw-type"), "{text}");
    assert!(text.contains("admission.rs:2"), "{text}");
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn cyclic_level_declaration_fails_the_gate() {
    let root = seed_tree(
        "cycle",
        "    Server = 90,\n    Engine = 90,\n",
        "| 90 | `Server` |\n| 90 | `Engine` |\n",
        "fn clean() {}\n",
    );
    let (ok, text) = run_locks(&root);
    assert!(!ok);
    assert!(text.contains("locks-hierarchy"), "{text}");
    assert!(text.contains("cyclic"), "{text}");
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn table_drift_fails_the_gate() {
    let root = seed_tree(
        "drift",
        "    Server = 90,\n    Engine = 70,\n",
        "| 90 | `Server` |\n", // Engine missing from the table
        "fn clean() {}\n",
    );
    let (ok, text) = run_locks(&root);
    assert!(!ok);
    assert!(text.contains("missing from the DESIGN.md"), "{text}");
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn real_tree_passes_the_gate() {
    let out = xtask().arg("locks").output().unwrap();
    assert!(
        out.status.success(),
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}
