//! E-commerce workloads over a WatDiv-like graph: the paper's structural
//! diversity test (linear / star / snowflake / complex / chains).
//!
//! Shows how differently shaped BGPs stress the engine, the contrast
//! between anchored and unanchored chain queries (the paper's IL
//! families), and what the optimizer does with each shape.
//!
//! ```sh
//! cargo run --release --example ecommerce_workloads -- [scale]
//! ```

use parj::datagen::watdiv;
use parj::{EngineConfig, Parj};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(8);

    println!("generating WatDiv-like store at scale {scale}…");
    let cfg = watdiv::WatDivConfig { scale, seed: 99 };
    println!(
        "  {} users, {} products, {} reviews, {} retailers",
        cfg.users(),
        cfg.products(),
        cfg.reviews(),
        cfg.retailers()
    );
    let store = watdiv::generate_store(&cfg);
    println!("  {} triples, {} predicates", store.num_triples(), store.num_predicates());
    let mut engine = Parj::from_store(store, EngineConfig::default());

    // The basic workload, grouped like the paper's Table 3.
    println!("\nbasic workload (silent mode):");
    let mut last_group = String::new();
    for q in watdiv::basic_workload() {
        if q.group != last_group {
            println!("-- {} queries --", q.group);
            last_group = q.group.clone();
        }
        let out = engine.request(&q.sparql).count_only().run()?;
        let (count, stats) = (out.count, out.stats);
        println!(
            "  {:<4} {:>9} results {:>9.2} ms  (prepare {:>6.2} ms)",
            q.name,
            count,
            stats.exec_micros as f64 / 1e3,
            stats.prepare_micros as f64 / 1e3,
        );
    }

    // Anchored vs unanchored chains: the IL contrast.
    println!("\nchain queries — anchored (IL-1) vs unanchored (IL-3):");
    println!("{:<9} {:>12} | {:<9} {:>12}", "query", "results", "query", "results");
    for (a, b) in watdiv::incremental_linear(1)
        .iter()
        .zip(watdiv::incremental_linear(3).iter())
    {
        let ca = engine.request(&a.sparql).count_only().run()?.count;
        let cb = engine.request(&b.sparql).count_only().run()?.count;
        println!("{:<9} {:>12} | {:<9} {:>12}", a.name, ca, b.name, cb);
    }

    // The star query S1 spends most of its budget in the optimizer at
    // tiny result sizes (paper §5.2.3); show the split.
    let s1 = watdiv::basic_workload()
        .into_iter()
        .find(|q| q.name == "S1")
        .expect("S1 exists");
    let out = engine.request(&s1.sparql).count_only().run()?;
    let (count, stats) = (out.count, out.stats);
    println!(
        "\nS1 (9-pattern star): {count} results; prepare {} µs vs execute {} µs",
        stats.prepare_micros, stats.exec_micros
    );
    println!("S1 plan:\n{}", engine.explain(&s1.sparql)?);

    // Friend-recommendation triangle (C3 in the paper's workload).
    let c3 = watdiv::basic_workload()
        .into_iter()
        .find(|q| q.name == "C3")
        .expect("C3 exists");
    let pairs = engine.request(&c3.sparql).count_only().run()?.count;
    println!("friends who like the same product (C3): {pairs} bindings");
    Ok(())
}
