//! Quickstart: load a few triples, run BGP queries, inspect the plan.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use parj::{Parj, ProbeStrategy};

const DATA: &str = r#"
# The running example of the paper (Section 3, Table 1).
<http://uni.example/ProfessorA> <http://uni.example/teaches>  <http://uni.example/Mathematics> .
<http://uni.example/ProfessorB> <http://uni.example/teaches>  <http://uni.example/Chemistry> .
<http://uni.example/ProfessorC> <http://uni.example/teaches>  <http://uni.example/Literature> .
<http://uni.example/ProfessorA> <http://uni.example/teaches>  <http://uni.example/Physics> .
<http://uni.example/ProfessorA> <http://uni.example/worksFor> <http://uni.example/University1> .
<http://uni.example/ProfessorB> <http://uni.example/worksFor> <http://uni.example/University2> .
<http://uni.example/ProfessorC> <http://uni.example/worksFor> <http://uni.example/University2> .
<http://uni.example/ProfessorA> <http://uni.example/name>     "Alice"@en .
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build an engine: 4 worker threads, the paper's default
    //    adaptive binary/sequential probe strategy.
    let mut engine = Parj::builder()
        .threads(4)
        .strategy(ProbeStrategy::AdaptiveBinary)
        .build();

    // 2. Load data (N-Triples text; files work via load_ntriples_path).
    let n = engine.load_ntriples_str(DATA)?;
    println!("loaded {n} triples ({} distinct)", engine.num_triples());

    // 3. Example 3.1 of the paper: who teaches what, and where do they
    //    work?
    let result = engine
        .request(
            "PREFIX u: <http://uni.example/>
             SELECT ?prof ?course ?employer WHERE {
                 ?prof u:teaches ?course .
                 ?prof u:worksFor ?employer .
             }",
        )
        .run()?
        .into_result();
    println!("\n?prof ?course ?employer:");
    print!("{}", result.to_table());

    // 4. Example 3.2: constant object — the optimizer drives the plan
    //    from the selective pattern using the O-S replica. Silent mode
    //    (`count_only`) is the paper's primary measurement;
    //    `explain(true)` attaches an EXPLAIN ANALYZE-style report from
    //    the actual parallel run.
    let query = "PREFIX u: <http://uni.example/>
         SELECT ?prof ?course WHERE {
             ?prof u:teaches ?course .
             ?prof u:worksFor u:University2 .
         }";
    let outcome = engine.request(query).count_only().explain(true).run()?;
    println!(
        "\nsilent mode: {} results in {} µs",
        outcome.count, outcome.stats.exec_micros
    );
    println!("{}", outcome.report());

    // 5. ASK, DISTINCT, LIMIT and literals all work; per-run knobs
    //    (timeout, max_rows, threads) chain on the same builder.
    let exists = engine
        .request("ASK { ?x <http://uni.example/name> \"Alice\"@en }")
        .count_only()
        .run()?
        .count;
    println!("is anyone named Alice? {}", exists == 1);

    // 6. Every run feeds the engine-wide metrics registry.
    let snap = engine.metrics_snapshot();
    println!(
        "queries so far: {:?}; store triples: {:?}",
        snap.value("parj_queries_total", &[("outcome", "ok")]),
        snap.value("parj_store_triples", &[]),
    );

    // 7. Persist and reload.
    let path = std::env::temp_dir().join("parj-quickstart.snapshot");
    engine.save_snapshot(&path)?;
    let mut restored = Parj::load_snapshot(&path, parj::EngineConfig::default())?;
    println!(
        "snapshot at {} restores {} triples",
        path.display(),
        restored.num_triples()
    );
    std::fs::remove_file(&path).ok();
    Ok(())
}
