//! RDFS hierarchy answering — the paper's §6 extension, live.
//!
//! The paper's conclusion sketches query answering over class and
//! property hierarchies "by 'unioning' tables during the pipelined join
//! execution ... without the need to materialize the implications".
//! This example builds a small ontology, shows the same query with and
//! without reasoning, and demonstrates that no extra triples were
//! materialized.
//!
//! ```sh
//! cargo run --example rdfs_reasoning
//! ```

use parj::{Parj, SharedParj};

const DATA: &str = r#"
# Ontology ---------------------------------------------------------------
<http://zoo/Dog>    <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://zoo/Mammal> .
<http://zoo/Cat>    <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://zoo/Mammal> .
<http://zoo/Mammal> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://zoo/Animal> .
<http://zoo/Parrot> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://zoo/Animal> .
<http://zoo/hasPuppy> <http://www.w3.org/2000/01/rdf-schema#subPropertyOf> <http://zoo/hasChild> .

# Data --------------------------------------------------------------------
<http://zoo/rex>    <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://zoo/Dog> .
<http://zoo/tom>    <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://zoo/Cat> .
<http://zoo/polly>  <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://zoo/Parrot> .
<http://zoo/whale>  <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://zoo/Mammal> .
<http://zoo/rex>    <http://zoo/hasPuppy> <http://zoo/rexjr> .
<http://zoo/rexjr>  <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://zoo/Dog> .
<http://zoo/tom>    <http://zoo/hasChild> <http://zoo/tomjr> .
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let animals_q = "SELECT ?x WHERE { ?x a <http://zoo/Animal> }";
    let children_q = "SELECT ?p ?c WHERE { ?p <http://zoo/hasChild> ?c }";

    // Plain engine: only direct assertions match.
    let mut plain = Parj::builder().build();
    plain.load_ntriples_str(DATA)?;
    let direct = plain.request(animals_q).count_only().run()?.count;
    println!("without reasoning: {direct} direct Animal instances");
    assert_eq!(direct, 0); // nothing is typed Animal directly

    // Reasoning engine: hierarchy extracted from the same data.
    let mut smart = Parj::builder().rdfs_reasoning(true).build();
    smart.load_ntriples_str(DATA)?;
    smart.finalize();
    println!(
        "store still holds {} triples (nothing materialized)",
        smart.num_triples()
    );
    let animals = smart.request(animals_q).run()?.into_result();
    println!("with reasoning: {} animals:", animals.rows.len());
    for row in &animals.rows {
        println!("  {}", row[0]);
    }
    let children = smart.request(children_q).run()?.into_result();
    println!("\nchild edges (hasPuppy ⊑ hasChild): {}", children.rows.len());
    for row in &children.rows {
        println!("  {} -> {}", row[0], row[1]);
    }

    // The plan is a union of per-subclass pipelines — inspect it.
    println!("\nreasoning plan for the Animal query:\n{}", smart.explain(animals_q)?);

    // SharedParj serves concurrent readers over the finalized store.
    let shared = std::sync::Arc::new(SharedParj::new(smart));
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let s = std::sync::Arc::clone(&shared);
            std::thread::spawn(move || {
                s.request("SELECT ?x WHERE { ?x a <http://zoo/Mammal> }")
                    .count_only()
                    .run()
                    .unwrap()
                    .count
            })
        })
        .collect();
    for h in handles {
        assert_eq!(h.join().unwrap(), 4); // rex, tom, whale, rexjr
    }
    println!("\n4 concurrent readers agreed: 4 mammals");
    Ok(())
}
