//! Build a small social graph by hand and explore it: path queries,
//! repeated variables, predicate variables, incremental updates, and
//! streaming-style counting — the API surface beyond the benchmark
//! suites.
//!
//! ```sh
//! cargo run --example social_graph
//! ```

use parj::{Parj, Term};

fn person(name: &str) -> Term {
    Term::iri(format!("http://social.example/{name}"))
}

fn rel(name: &str) -> Term {
    Term::iri(format!("http://social.example/rel/{name}"))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut engine = Parj::builder().threads(2).build();

    // Friendships (some mutual, one self-loop for the repeated-variable
    // demo) and messages.
    let friendships = [
        ("alice", "bob"),
        ("bob", "alice"),
        ("bob", "carol"),
        ("carol", "dave"),
        ("dave", "alice"),
        ("erin", "erin"), // erin follows themself
        ("erin", "alice"),
    ];
    let posts = [
        ("alice", "hello world"),
        ("carol", "RDF is graphs all the way down"),
        ("dave", "adaptive joins are neat"),
    ];
    engine
        .mutate()
        .insert_all(
            friendships
                .iter()
                .map(|&(a, b)| (person(a), rel("follows"), person(b))),
        )
        .insert_all(
            posts
                .iter()
                .map(|&(author, text)| (person(author), rel("posted"), Term::literal(text))),
        )
        .run()?;
    println!("graph has {} triples", engine.num_triples());

    // Two-hop reachability: who can alice reach through one friend?
    let res = engine
        .request(
            "PREFIX s: <http://social.example/>
             PREFIX r: <http://social.example/rel/>
             SELECT DISTINCT ?reached WHERE {
                 s:alice r:follows ?mid .
                 ?mid r:follows ?reached .
             }",
        )
        .run()?
        .into_result();
    println!("\nalice's two-hop reach:");
    for row in &res.rows {
        println!("  {}", row[0]);
    }

    // Mutual follows: the repeated-variable triangle ?a → ?b → ?a.
    let res = engine
        .request(
            "PREFIX r: <http://social.example/rel/>
             SELECT ?a ?b WHERE { ?a r:follows ?b . ?b r:follows ?a . }",
        )
        .run()?
        .into_result();
    println!("\nmutual follows (includes erin's self-loop):");
    for row in &res.rows {
        println!("  {} <-> {}", row[0], row[1]);
    }

    // Self-loops specifically: ?x follows ?x.
    let selfloops = engine
        .request(
            "PREFIX r: <http://social.example/rel/>
             SELECT ?x WHERE { ?x r:follows ?x . }",
        )
        .count_only()
        .run()?
        .count;
    println!("\nself-loops: {selfloops}");

    // Predicate variable: everything known about dave, over any
    // predicate (expands to a union over the predicate partitions).
    let facts = engine
        .request(
            "PREFIX s: <http://social.example/>
             SELECT ?o WHERE { s:dave ?p ?o . }",
        )
        .count_only()
        .run()?
        .count;
    println!("facts about dave across all predicates: {facts}");

    // Incremental update: frank joins and follows everyone. The batch
    // lands in the delta overlay — no store rebuild — and the outcome
    // reports what was applied.
    let outcome = engine
        .mutate()
        .insert_all(
            ["alice", "bob", "carol", "dave", "erin"]
                .iter()
                .map(|&other| (person("frank"), rel("follows"), person(other))),
        )
        .run()?;
    println!(
        "\napplied {} inserts across {} predicate(s) in {}us",
        outcome.inserted,
        outcome.predicates_touched,
        outcome.phases.total()
    );
    let count = engine
        .request(
            "PREFIX s: <http://social.example/>
             PREFIX r: <http://social.example/rel/>
             SELECT ?x WHERE { s:frank r:follows ?x . }",
        )
        .count_only()
        .run()?
        .count;
    println!("\nafter frank joined: frank follows {count} people");

    // Influencers: DISTINCT + LIMIT.
    let res = engine
        .request(
            "PREFIX r: <http://social.example/rel/>
             SELECT DISTINCT ?who WHERE { ?someone r:follows ?who . } LIMIT 3",
        )
        .run()?
        .into_result();
    println!(
        "three people with followers: {}",
        res.rows
            .iter()
            .map(|r| r[0].to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    Ok(())
}
