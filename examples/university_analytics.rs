//! University analytics over a generated LUBM-like graph: the paper's
//! primary workload, end to end.
//!
//! Generates a configurable number of universities, runs the ten
//! benchmark queries, and dissects one of them: plan, adaptive-search
//! decisions, thread-count sweep, silent vs full result handling.
//!
//! ```sh
//! cargo run --release --example university_analytics -- [universities]
//! ```

use parj::datagen::lubm;
use parj::{EngineConfig, Parj, ProbeStrategy, RunOverrides};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let universities: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(4);

    println!("generating {universities} universities…");
    let store = lubm::generate_store(&lubm::LubmConfig {
        universities,
        seed: 7,
    });
    println!(
        "{} triples, {} predicates, {} resources, {:.1} MiB partitions + {:.1} MiB dictionary",
        store.num_triples(),
        store.num_predicates(),
        store.dict().num_resources(),
        store.partitions_memory_bytes() as f64 / (1 << 20) as f64,
        store.dict().memory_bytes() as f64 / (1 << 20) as f64,
    );
    let mut engine = Parj::from_store(store, EngineConfig::default());

    // Run the whole benchmark suite in silent mode.
    println!("\n{:<8} {:>10} {:>10} {:>12} {:>12}", "query", "results", "ms", "#sequential", "#binary");
    for q in lubm::queries() {
        let out = engine.request(&q.sparql).count_only().run()?;
        let (count, stats) = (out.count, out.stats);
        println!(
            "{:<8} {:>10} {:>10.2} {:>12} {:>12}",
            q.name,
            count,
            stats.exec_micros as f64 / 1e3,
            stats.search.sequential_searches,
            stats.search.binary_searches,
        );
    }

    // Deep dive: the advisor triangle (LUBM9), the heaviest query.
    let lubm9 = lubm::queries().into_iter().nth(8).expect("LUBM9");
    println!("\nLUBM9 plan:\n{}", engine.explain(&lubm9.sparql)?);

    println!("\nLUBM9 under the four probe strategies (1 thread):");
    for strategy in ProbeStrategy::TABLE5 {
        let stats = engine
            .request(&lubm9.sparql)
            .threads(1)
            .strategy(strategy)
            .count_only()
            .run()?
            .stats;
        println!(
            "  {:<10} {:>8.2} ms, words touched: {}",
            strategy.label(),
            stats.exec_micros as f64 / 1e3,
            stats.search.words_touched()
        );
    }

    println!("\nLUBM9 morsel balance (speedup bound by thread count):");
    for threads in [1usize, 2, 4, 8, 16] {
        let plans = engine.morsel_loads(&lubm9.sparql, &RunOverrides::threads(threads))?;
        let loads = &plans[0];
        let total: u64 = loads.iter().sum();
        let max_morsel = loads.iter().copied().max().unwrap_or(1);
        let bound = total as f64 / (total as f64 / threads as f64).max(max_morsel as f64);
        println!("  {threads:>2} threads: {bound:.2}x over {} morsels", loads.len());
    }

    // Full result handling: decode the selective star query's rows.
    let lubm4 = lubm::queries().into_iter().nth(3).expect("LUBM4");
    let full = engine.request(&lubm4.sparql).run()?.into_result();
    println!(
        "\nLUBM4 (faculty of u0/d0): {} people; first row:",
        full.rows.len()
    );
    if let Some(row) = full.rows.first() {
        for (var, term) in full.vars.iter().zip(row) {
            println!("  ?{var} = {term}");
        }
    }
    Ok(())
}
