//! # parj — Parallel Adaptive RDF Joins
//!
//! Facade crate for the PARJ workspace: a Rust reproduction of
//! *"Scalable Parallelization of RDF Joins on Multicore Architectures"*
//! (Bilidas & Koubarakis, EDBT 2019).
//!
//! Everything a user needs is re-exported here: the engine
//! ([`Parj`]), the benchmark data generators ([`datagen`]), and the
//! baseline engines ([`baseline`]) used to reproduce the paper's
//! comparisons. See the repository README for a tour and
//! `examples/quickstart.rs` for a two-minute introduction.
//!
//! ```
//! use parj::Parj;
//!
//! let mut engine = Parj::builder().threads(4).build();
//! engine.load_ntriples_str(
//!     "<http://e/a> <http://e/knows> <http://e/b> .\n\
//!      <http://e/b> <http://e/knows> <http://e/c> .\n",
//! ).unwrap();
//! let outcome = engine
//!     .request("SELECT ?x ?z WHERE { ?x <http://e/knows> ?y . ?y <http://e/knows> ?z }")
//!     .count_only()
//!     .run()
//!     .unwrap();
//! assert_eq!(outcome.count, 1);
//! ```

pub use parj_core::*;

/// Benchmark data generators (LUBM-like and WatDiv-like).
pub mod datagen {
    pub use parj_datagen::*;
}

/// Baseline engines and the reference evaluator.
pub mod baseline {
    pub use parj_baseline::*;
}
