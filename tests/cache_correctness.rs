//! Cache transparency suite: the plan/result caching layer must be
//! invisible to answers. For arbitrary graphs, arbitrary (connected or
//! not) BGP pools and arbitrary interleavings of updates and queries,
//! a cache-enabled engine returns byte-identical counts and rows to a
//! cache-disabled engine fed the same operations — and across a long
//! deterministic update/query interleaving, no run is ever served a
//! stale answer.

use proptest::prelude::*;

use parj::{CacheStatus, Parj, Term};

const RESOURCES: u32 = 16;
const PREDICATES: u32 = 3;
const VARS: u16 = 3;

fn iri(i: u32) -> String {
    format!("http://t/r{i}")
}

fn pred_iri(p: u32) -> String {
    format!("http://t/p{p}")
}

/// One slot of a random pattern: variable index or resource constant.
#[derive(Debug, Clone, Copy)]
enum Slot {
    Var(u16),
    Const(u32),
}

fn arb_slot() -> impl Strategy<Value = Slot> {
    prop_oneof![
        3 => (0..VARS).prop_map(Slot::Var),
        1 => (0..RESOURCES).prop_map(Slot::Const),
    ]
}

fn slot_sparql(s: Slot) -> String {
    match s {
        Slot::Var(v) => format!("?v{v}"),
        Slot::Const(c) => format!("<{}>", iri(c)),
    }
}

fn query_text(patterns: &[(Slot, u32, Slot)]) -> String {
    let body: String = patterns
        .iter()
        .map(|(s, p, o)| format!("{} <{}> {} . ", slot_sparql(*s), pred_iri(*p), slot_sparql(*o)))
        .collect();
    format!("SELECT * WHERE {{ {body}}}")
}

/// One step of an interleaved workload.
#[derive(Debug, Clone)]
enum Op {
    /// Run query `idx` from the case's query pool (twice on the cached
    /// engine, so the second run exercises the hit path).
    Query(usize),
    /// Insert a triple into both engines through `mutate()` — the batch
    /// lands in the delta overlay and bumps only the touched
    /// predicate's epoch.
    Update(u32, u32, u32),
    /// Delete a triple from both engines (a no-op when absent, which
    /// the pool generates often — exercising the nothing-touched,
    /// nothing-invalidated path).
    Delete(u32, u32, u32),
}

#[derive(Debug, Clone)]
struct Case {
    triples: Vec<(u32, u32, u32)>,
    queries: Vec<Vec<(Slot, u32, Slot)>>,
    ops: Vec<Op>,
}

fn arb_case() -> impl Strategy<Value = Case> {
    let triples =
        proptest::collection::vec((0..RESOURCES, 0..PREDICATES, 0..RESOURCES), 1..60);
    let queries = proptest::collection::vec(
        proptest::collection::vec((arb_slot(), 0..PREDICATES, arb_slot()), 1..3),
        1..4,
    );
    let ops = proptest::collection::vec(
        prop_oneof![
            4 => (0usize..4).prop_map(Op::Query),
            1 => (0..RESOURCES, 0..PREDICATES, 0..RESOURCES)
                .prop_map(|(s, p, o)| Op::Update(s, p, o)),
            1 => (0..RESOURCES, 0..PREDICATES, 0..RESOURCES)
                .prop_map(|(s, p, o)| Op::Delete(s, p, o)),
        ],
        1..16,
    );
    (triples, queries, ops).prop_map(|(triples, queries, ops)| Case { triples, queries, ops })
}

fn triple(s: u32, p: u32, o: u32) -> (Term, Term, Term) {
    (
        Term::iri(iri(s)),
        Term::iri(pred_iri(p)),
        Term::iri(iri(o)),
    )
}

fn load(engine: &mut Parj, triples: &[(u32, u32, u32)]) {
    engine
        .mutate()
        .insert_all(triples.iter().map(|&(s, p, o)| triple(s, p, o)))
        .run()
        .expect("load");
}

fn sorted_rows(rows: Option<Vec<Vec<Term>>>) -> Vec<Vec<Term>> {
    let mut rows = rows.expect("materializing run returns rows");
    rows.sort();
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Cached and cache-off engines fed the same update/query
    /// interleaving agree on every count and every row multiset, and
    /// repeat runs on the cached engine (hit path) agree too.
    #[test]
    fn cached_answers_match_cold_engine(case in arb_case()) {
        let mut cached = Parj::builder().threads(2).cache(true).build();
        let mut plain = Parj::builder().threads(2).build();
        load(&mut cached, &case.triples);
        load(&mut plain, &case.triples);

        for op in &case.ops {
            match op {
                Op::Update(s, p, o) => {
                    for e in [&mut cached, &mut plain] {
                        let (ts, tp, to) = triple(*s, *p, *o);
                        e.mutate().insert(ts, tp, to).run().unwrap();
                    }
                }
                Op::Delete(s, p, o) => {
                    for e in [&mut cached, &mut plain] {
                        let (ts, tp, to) = triple(*s, *p, *o);
                        e.mutate().delete(ts, tp, to).run().unwrap();
                    }
                }
                Op::Query(idx) => {
                    let q = query_text(&case.queries[idx % case.queries.len()]);
                    let reference = match plain.request(&q).run() {
                        Ok(r) => r,
                        Err(err) => {
                            // Rejections (e.g. disconnected BGPs) must
                            // be identical with the cache on.
                            let cached_err = cached.request(&q).run().unwrap_err();
                            prop_assert_eq!(format!("{cached_err:?}"), format!("{err:?}"));
                            continue;
                        }
                    };
                    prop_assert_eq!(reference.stats.cache, CacheStatus::Off);
                    let expect_rows = sorted_rows(reference.rows);

                    let first = cached.request(&q).run().unwrap();
                    prop_assert_ne!(first.stats.cache, CacheStatus::Off);
                    prop_assert_eq!(first.count, reference.count);
                    prop_assert_eq!(sorted_rows(first.rows), expect_rows.clone());

                    // Second run: typically a result hit; whatever the
                    // cache decided, the answer must not change.
                    let second = cached.request(&q).run().unwrap();
                    prop_assert_eq!(second.count, reference.count);
                    prop_assert_eq!(sorted_rows(second.rows), expect_rows);

                    // Counting mode keys a separate entry; it must
                    // agree with the materialized cardinality.
                    let n = cached.request(&q).count_only().run().unwrap();
                    prop_assert_eq!(n.count, reference.count);
                }
            }
        }
    }
}

/// A long deterministic interleaving: ~10k query runs against a cached
/// engine, with an incremental write every 40 queries (an insert, and
/// every third write a delete) — so invalidation is per-predicate
/// epoch bumps, never a store rebuild. Every run is checked against an
/// uncached `bypass_cache()` run on the same engine — a single stale
/// answer fails the loop with its iteration index.
#[test]
fn ten_thousand_interleavings_serve_zero_stale() {
    let mut engine = Parj::builder().threads(1).cache(true).build();
    load(
        &mut engine,
        &(0..8u32)
            .map(|i| (i, i % PREDICATES, (i + 1) % 8))
            .collect::<Vec<_>>(),
    );
    let queries: Vec<String> = (0..PREDICATES)
        .map(|p| format!("SELECT * WHERE {{ ?s <{}> ?o }}", pred_iri(p)))
        .chain(std::iter::once(format!(
            "SELECT * WHERE {{ ?a <{}> ?b . ?b <{}> ?c }}",
            pred_iri(0),
            pred_iri(1)
        )))
        .collect();

    // Simple deterministic LCG so the mix is reproducible without any
    // randomness source.
    let mut state = 0x2545_f491_4f6c_dd1du64;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 33) as u32
    };

    let mut writes = 0u32;
    for iter in 0..10_000u32 {
        if iter % 40 == 39 {
            let (s, p, o) = (next() % RESOURCES, next() % PREDICATES, next() % RESOURCES);
            let (ts, tp, to) = triple(s, p, o);
            writes += 1;
            let req = engine.mutate();
            if writes.is_multiple_of(3) {
                req.delete(ts, tp, to).run().unwrap();
            } else {
                req.insert(ts, tp, to).run().unwrap();
            }
        }
        let q = &queries[(next() as usize) % queries.len()];
        let cached = engine.request(q).run().unwrap();
        let fresh = engine.request(q).bypass_cache().run().unwrap();
        assert_eq!(fresh.stats.cache, CacheStatus::Bypassed);
        assert_eq!(
            cached.count, fresh.count,
            "stale count at iteration {iter} for {q}"
        );
        assert_eq!(
            sorted_rows(cached.rows),
            sorted_rows(fresh.rows),
            "stale rows at iteration {iter} for {q}"
        );
    }
}

/// Pins the per-predicate invalidation contract: a write touching
/// predicate `p1` invalidates exactly the entries whose query
/// references `p1` — a query over `p0` keeps serving result hits
/// across the interleaved writes, never re-executing.
#[test]
fn writes_leave_untouched_predicate_entries_hot() {
    let mut engine = Parj::builder().threads(1).cache(true).build();
    load(&mut engine, &[(0, 0, 1), (1, 0, 2), (1, 1, 3), (3, 1, 4)]);

    let q0 = format!("SELECT * WHERE {{ ?s <{}> ?o }}", pred_iri(0));
    let q1 = format!("SELECT * WHERE {{ ?s <{}> ?o }}", pred_iri(1));
    let join = format!(
        "SELECT * WHERE {{ ?a <{}> ?b . ?b <{}> ?c }}",
        pred_iri(0),
        pred_iri(1)
    );

    // Warm all three entries.
    for q in [&q0, &q1, &join] {
        assert_eq!(engine.request(q).run().unwrap().stats.cache, CacheStatus::Miss);
        assert_eq!(engine.request(q).run().unwrap().stats.cache, CacheStatus::ResultHit);
    }

    // Ten writes, all confined to p1.
    for i in 0..10u32 {
        let out = engine
            .mutate()
            .insert(Term::iri(iri(5 + i % 3)), Term::iri(pred_iri(1)), Term::iri(iri(i % 5)))
            .delete(Term::iri(iri(5 + i % 3)), Term::iri(pred_iri(1)), Term::iri(iri(i % 5)))
            .run()
            .unwrap();
        assert_eq!(out.predicates_touched, 0, "insert+delete of the same triple nets out");

        let out = engine
            .mutate()
            .insert(Term::iri(iri(5)), Term::iri(pred_iri(1)), Term::iri(iri(6 + i % 2)))
            .run()
            .unwrap();
        assert!(out.predicates_touched <= 1);

        // The untouched predicate's entry survives every write.
        assert_eq!(
            engine.request(&q0).run().unwrap().stats.cache,
            CacheStatus::ResultHit,
            "write {i} to p1 must not evict the p0 entry"
        );
    }

    // Entries referencing the touched predicate went stale — and the
    // re-executed answers reflect the writes.
    let fresh = engine.request(&q1).run().unwrap();
    assert_eq!(fresh.stats.cache, CacheStatus::Miss);
    assert_eq!(fresh.count, 4, "2 base + (5,p1,6) + (5,p1,7)");
    let fresh_join = engine.request(&join).run().unwrap();
    assert_eq!(fresh_join.stats.cache, CacheStatus::Miss);

    // A delete on p0 now invalidates the p0 entry (and the join), but
    // leaves the freshly re-cached p1 entry alone.
    assert_eq!(engine.request(&q1).run().unwrap().stats.cache, CacheStatus::ResultHit);
    let out = engine
        .mutate()
        .delete(Term::iri(iri(0)), Term::iri(pred_iri(0)), Term::iri(iri(1)))
        .run()
        .unwrap();
    assert_eq!((out.deleted, out.predicates_touched), (1, 1));
    let after = engine.request(&q0).run().unwrap();
    assert_eq!(after.stats.cache, CacheStatus::Miss);
    assert_eq!(after.count, 1);
    assert_eq!(engine.request(&q1).run().unwrap().stats.cache, CacheStatus::ResultHit);
}
