//! Determinism suite for morsel-driven pooled execution.
//!
//! The executor's contract is that results are **byte-identical**
//! regardless of how the driver domain is carved into morsels, how
//! many workers pull them, and whether those workers are persistent
//! pool threads or per-query scoped spawns. This suite pins that
//! contract end-to-end through the facade on both benchmark dataset
//! shapes, including the guarded early-exit paths (cancel, deadline,
//! row budget), the cache-fingerprint consequences (a result computed
//! under one thread/morsel configuration is served verbatim under any
//! other), and the load-balance claim that dynamic morsel pulling
//! never distributes work worse than the old static per-thread shards.

use parj::datagen::{lubm, watdiv};
use parj::{
    CacheStatus, CancelToken, EngineConfig, Parj, ParjError, RunOverrides,
};
use std::time::Duration;

/// Thread ladder: serial, even splits, and more workers than cores.
const THREADS: [usize; 4] = [1, 2, 4, 9];

/// Morsel ladder: degenerate single-key morsels, small, and the
/// default (which exceeds every test domain, i.e. one morsel total).
const MORSELS: [usize; 3] = [1, 64, 16_384];

fn lubm_store() -> parj::TripleStore {
    lubm::generate_store(&lubm::LubmConfig {
        universities: 1,
        seed: 11,
    })
}

fn watdiv_store() -> parj::TripleStore {
    watdiv::generate_store(&watdiv::WatDivConfig { scale: 10, seed: 11 })
}

/// Base config for the suite: enough configured threads that the
/// engine's pool (threads − 1 workers) covers the whole ladder.
fn config(use_pool: bool) -> EngineConfig {
    EngineConfig {
        threads: 9,
        use_pool,
        ..EngineConfig::default()
    }
}

/// Runs every `THREADS × MORSELS` combination of `sparql` on `engine`
/// in ids mode and asserts the id rows equal `baseline` *exactly* —
/// same rows, same order, which for dictionary ids is byte identity.
fn assert_all_combos_match(
    engine: &mut Parj,
    sparql: &str,
    name: &str,
    baseline: &[Vec<parj::Id>],
) {
    for threads in THREADS {
        for morsel in MORSELS {
            let got = engine
                .request(sparql)
                .threads(threads)
                .morsel_size(morsel)
                .ids_only()
                .run()
                .unwrap_or_else(|e| panic!("{name} t={threads} m={morsel}: {e}"))
                .ids
                .expect("ids mode returns ids");
            assert_eq!(
                got, baseline,
                "{name}: rows diverged at threads={threads} morsel={morsel}"
            );
        }
    }
}

#[test]
fn lubm_rows_identical_across_threads_morsels_and_dispatch() {
    let mut pooled = Parj::from_store(lubm_store(), config(true));
    let mut spawned = Parj::from_store(lubm_store(), config(false));
    for q in lubm::queries() {
        let baseline = pooled
            .request(&q.sparql)
            .threads(1)
            .ids_only()
            .run()
            .expect("baseline runs")
            .ids
            .expect("ids mode returns ids");
        assert_all_combos_match(&mut pooled, &q.sparql, &q.name, &baseline);
        assert_all_combos_match(&mut spawned, &q.sparql, &q.name, &baseline);
    }
    assert!(
        pooled.pool_stats().is_some_and(|s| s.jobs > 0),
        "multi-thread runs must actually go through the pool"
    );
}

#[test]
fn watdiv_rows_identical_across_threads_morsels_and_dispatch() {
    let mut pooled = Parj::from_store(watdiv_store(), config(true));
    let mut spawned = Parj::from_store(watdiv_store(), config(false));
    // One query per WatDiv shape class keeps the suite fast while
    // still covering linear, star, snowflake and complex pipelines.
    let picks = ["L2", "S3", "F3", "C2"];
    let queries: Vec<_> = watdiv::basic_workload()
        .into_iter()
        .filter(|q| picks.contains(&q.name.as_str()))
        .collect();
    assert_eq!(queries.len(), picks.len(), "shape picks must resolve");
    for q in queries {
        let baseline = pooled
            .request(&q.sparql)
            .threads(1)
            .ids_only()
            .run()
            .expect("baseline runs")
            .ids
            .expect("ids mode returns ids");
        assert!(!baseline.is_empty(), "{} must produce rows", q.name);
        assert_all_combos_match(&mut pooled, &q.sparql, &q.name, &baseline);
        assert_all_combos_match(&mut spawned, &q.sparql, &q.name, &baseline);
    }
}

type TermTriples = Vec<(parj::Term, parj::Term, parj::Term)>;

/// The same incremental mutation batch, decoded back to terms, for any
/// store: tombstone every 7th stored triple and insert a fresh subject
/// against every 11th triple's predicate/object.
fn mutation_batch(store: &parj::TripleStore) -> (TermTriples, TermTriples) {
    let dict = store.dict();
    let mut inserts = Vec::new();
    let mut deletes = Vec::new();
    for (i, t) in store.iter_triples().enumerate() {
        let p = dict.decode_predicate(t.p).expect("predicate decodes");
        if i % 7 == 0 {
            deletes.push((
                dict.decode_resource(t.s).expect("subject decodes"),
                p.clone(),
                dict.decode_resource(t.o).expect("object decodes"),
            ));
        }
        if i % 11 == 0 {
            inserts.push((
                parj::Term::iri(format!("http://delta.example/n{i}")),
                p,
                dict.decode_resource(t.o).expect("object decodes"),
            ));
        }
    }
    (inserts, deletes)
}

#[test]
fn delta_rows_identical_to_compacted_store_across_combos() {
    // Three engines over the same logical data: one whose batch stays
    // resident as sorted delta runs (threshold 0 = never compact), one
    // compacted inline (threshold 1 = always compact), and one fully
    // rebuilt from scratch via snapshot round-trip. The byte-identity
    // contract: probing resident runs must be indistinguishable — same
    // rows, same order, every threads × morsels × dispatch combo —
    // from probing the fully compacted partitions. The rebuilt engine
    // is compared as a sorted multiset instead: a rebuild refreshes
    // the optimizer's statistics (histograms, pair cardinalities),
    // which may legitimately pick a different join order; recomputing
    // those per batch would be O(dataset), the very cost the delta
    // design exists to avoid.
    let base = lubm_store();
    let (inserts, deletes) = mutation_batch(&base);
    assert!(!inserts.is_empty() && !deletes.is_empty());

    let mut resident = Parj::from_store(
        lubm_store(),
        EngineConfig {
            delta_compaction_threshold: 0,
            ..config(true)
        },
    );
    let mut compacted = Parj::from_store(
        lubm_store(),
        EngineConfig {
            delta_compaction_threshold: 1,
            ..config(true)
        },
    );
    let mut spawned_resident = Parj::from_store(
        lubm_store(),
        EngineConfig {
            delta_compaction_threshold: 0,
            ..config(false)
        },
    );
    for engine in [&mut resident, &mut compacted, &mut spawned_resident] {
        let out = engine
            .mutate()
            .insert_all(inserts.iter().cloned())
            .delete_all(deletes.iter().cloned())
            .run()
            .expect("mutation batch");
        assert_eq!(out.inserted, inserts.len() as u64);
        assert_eq!(out.deleted, deletes.len() as u64);
    }
    // The two configurations really sit in different physical states.
    let resident_pairs = |e: &Parj| {
        e.metrics_snapshot()
            .value("parj_delta_resident_triples", &[])
            .expect("gauge exported")
    };
    assert!(resident_pairs(&resident) > 0, "threshold 0 must keep runs resident");
    assert_eq!(resident_pairs(&compacted), 0, "threshold 1 must compact every batch");

    // Rebuilt-from-scratch oracle: a fourth engine given the same
    // batch, snapshotted (which folds its delta into a full rebuild)
    // and reloaded. Snapshotting `resident` itself would fold — and so
    // destroy — the resident runs this test exists to probe.
    let dir = std::env::temp_dir().join(format!("parj-determinism-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("folded.parj");
    {
        let mut oracle = Parj::from_store(lubm_store(), config(true));
        oracle
            .mutate()
            .insert_all(inserts.iter().cloned())
            .delete_all(deletes.iter().cloned())
            .run()
            .expect("oracle batch");
        oracle.save_snapshot(&path).expect("snapshot");
    }
    let mut folded = Parj::load_snapshot(&path, config(true)).expect("reload");
    std::fs::remove_dir_all(&dir).ok();

    for q in lubm::queries() {
        let baseline = compacted
            .request(&q.sparql)
            .threads(1)
            .ids_only()
            .run()
            .expect("baseline runs")
            .ids
            .expect("ids mode returns ids");
        assert_all_combos_match(&mut resident, &q.sparql, &q.name, &baseline);
        assert_all_combos_match(&mut compacted, &q.sparql, &q.name, &baseline);
        assert_all_combos_match(&mut spawned_resident, &q.sparql, &q.name, &baseline);

        // Rebuilt-from-scratch agreement, order-insensitive.
        let mut from_rebuild = folded
            .request(&q.sparql)
            .threads(1)
            .ids_only()
            .run()
            .expect("rebuilt runs")
            .ids
            .expect("ids mode returns ids");
        let mut sorted_baseline = baseline;
        from_rebuild.sort_unstable();
        sorted_baseline.sort_unstable();
        assert_eq!(
            from_rebuild, sorted_baseline,
            "{}: delta view and from-scratch rebuild disagree",
            q.name
        );
    }
}

#[test]
fn cache_fingerprint_hits_across_thread_and_morsel_combos() {
    // Because answers are configuration-independent, the cache key
    // must be too: a result computed serially is served verbatim to a
    // 9-thread, 1-key-morsel request and vice versa.
    let mut engine = Parj::from_store(
        lubm_store(),
        EngineConfig {
            cache: true,
            ..config(true)
        },
    );
    let q = &lubm::queries()[0].sparql;
    let cold = engine
        .request(q)
        .threads(1)
        .count_only()
        .run()
        .expect("cold run");
    assert_eq!(cold.stats.cache, CacheStatus::Miss);
    for threads in THREADS {
        for morsel in MORSELS {
            let warm = engine
                .request(q)
                .threads(threads)
                .morsel_size(morsel)
                .count_only()
                .run()
                .expect("warm run");
            assert_eq!(warm.count, cold.count);
            assert_eq!(
                warm.stats.cache,
                CacheStatus::ResultHit,
                "threads={threads} morsel={morsel} must hit the shared entry"
            );
        }
    }
}

#[test]
fn early_exit_paths_agree_across_combos() {
    // The guard's cancel/deadline/budget trips must classify the same
    // way under every dispatch configuration — a morsel interleaving
    // may change *where* a worker notices the trip, never *what* the
    // caller observes.
    let store = lubm::generate_store(&lubm::LubmConfig {
        universities: 2,
        seed: 11,
    });
    // LUBM1 is the widest join in the mix: plenty of rows for the
    // budget to trip on, plenty of work for deadline polls.
    let q = &lubm::queries()[0].sparql;
    for use_pool in [true, false] {
        let mut engine = Parj::from_store(
            parj::TripleStore::from_snapshot_bytes(&store.to_snapshot_bytes())
                .expect("snapshot round-trip"),
            config(use_pool),
        );
        for threads in THREADS {
            for morsel in MORSELS {
                fn base<'e>(
                    e: &'e mut Parj,
                    q: &str,
                    threads: usize,
                    morsel: usize,
                ) -> parj::QueryRequest<'e> {
                    e.request(q).threads(threads).morsel_size(morsel).count_only()
                }

                let token = CancelToken::new();
                token.cancel();
                let err = base(&mut engine, q, threads, morsel)
                    .cancel(token)
                    .run()
                    .unwrap_err();
                assert!(
                    matches!(err, ParjError::Cancelled { .. }),
                    "pool={use_pool} t={threads} m={morsel}: {err}"
                );

                let err = base(&mut engine, q, threads, morsel)
                    .timeout(Duration::ZERO)
                    .run()
                    .unwrap_err();
                assert!(
                    matches!(err, ParjError::DeadlineExceeded { .. }),
                    "pool={use_pool} t={threads} m={morsel}: {err}"
                );

                let err = base(&mut engine, q, threads, morsel).max_rows(1).run().unwrap_err();
                assert!(
                    matches!(err, ParjError::BudgetExceeded { .. }),
                    "pool={use_pool} t={threads} m={morsel}: {err}"
                );

                // And the same request unguarded still answers.
                let ok = base(&mut engine, q, threads, morsel).run().expect("unguarded runs");
                assert!(ok.count > 1, "budget test needs multiple rows");
            }
        }
    }
}

#[test]
fn morsel_imbalance_never_exceeds_static_shard_imbalance() {
    // Load-balance claim from the ISSUE: dynamic morsel pulling must
    // not distribute probe work worse than the old static split of
    // the driver domain into one contiguous shard per thread. Both
    // sides are computed from the same per-morsel probe loads — the
    // static split is just the degenerate morsel size ⌈domain/t⌉ —
    // and the dynamic makespan is simulated by list scheduling the
    // morsels in cursor order onto the least-loaded worker, which is
    // exactly what pulling off a shared cursor does when load is
    // proportional to time.
    let mut engine = Parj::from_store(watdiv_store(), config(true));
    // C2 is the skewed complex shape: a handful of hub keys carry
    // most of the probe work.
    let q = watdiv::basic_workload()
        .into_iter()
        .find(|q| q.name == "C2")
        .expect("C2 exists");
    for threads in [2usize, 4, 9] {
        let fine = engine
            .morsel_loads(&q.sparql, &RunOverrides::threads(threads).with_morsel_size(8))
            .expect("loads run");
        for (plan_idx, loads) in fine.iter().enumerate() {
            let total: u64 = loads.iter().sum();
            if total == 0 {
                continue;
            }
            let ideal = total as f64 / threads as f64;
            // Static contiguous split: group the fine morsels into
            // `threads` equal-width ranges of the driver domain.
            let per = loads.len().div_ceil(threads);
            let static_max = loads
                .chunks(per.max(1))
                .map(|c| c.iter().sum::<u64>())
                .max()
                .unwrap_or(0);
            // Dynamic pull: next free worker takes the next morsel.
            let mut workers = vec![0u64; threads];
            for &l in loads {
                let min = workers
                    .iter_mut()
                    .min()
                    .expect("at least one worker");
                *min += l;
            }
            let dyn_max = workers.into_iter().max().unwrap_or(0);
            let static_imb = static_max as f64 / ideal;
            let dyn_imb = dyn_max as f64 / ideal;
            assert!(
                dyn_imb <= static_imb + 1e-9,
                "plan {plan_idx} threads {threads}: dynamic imbalance \
                 {dyn_imb:.3} worse than static {static_imb:.3}"
            );
        }
    }
}

/// Counts block-compressed replicas across a store's partitions.
fn compressed_replicas(store: &parj::TripleStore) -> usize {
    store
        .partitions()
        .iter()
        .flat_map(|p| [parj::SortOrder::SO, parj::SortOrder::OS].map(|o| p.replica(o)))
        .filter(|r| r.is_compressed())
        .count()
}

#[test]
fn compressed_rows_identical_to_uncompressed_across_combos() {
    // Block compression is a physical-layout choice; the contract is
    // that it is invisible in results. Every threads × morsels ×
    // pooled/spawned combination over a compressed store must return
    // the exact rows — same order — of the uncompressed engine.
    let mut raw = Parj::from_store(
        lubm_store(),
        EngineConfig {
            compress_replicas: false,
            ..config(true)
        },
    );
    let small = |use_pool: bool| EngineConfig {
        // Threshold low enough that most LUBM-1 runs compress.
        compress_min_values: 4,
        ..config(use_pool)
    };
    let mut pooled = Parj::from_store(lubm_store(), small(true));
    let mut spawned = Parj::from_store(lubm_store(), small(false));
    assert_eq!(compressed_replicas(raw.store()), 0);
    assert!(
        compressed_replicas(pooled.store()) > 0,
        "threshold 4 must compress some replicas"
    );

    for q in lubm::queries() {
        let baseline = raw
            .request(&q.sparql)
            .threads(1)
            .ids_only()
            .run()
            .expect("uncompressed baseline")
            .ids
            .expect("ids mode returns ids");
        assert_all_combos_match(&mut pooled, &q.sparql, &q.name, &baseline);
        assert_all_combos_match(&mut spawned, &q.sparql, &q.name, &baseline);
    }
}

#[test]
fn compressed_delta_rows_identical_to_uncompressed_across_combos() {
    // Same contract with a mutation batch layered on top: resident
    // delta runs merging into *compressed* base groups, and inline
    // compaction re-compressing the replacement partitions, must both
    // match a fully uncompressed engine holding the same batch.
    let base = lubm_store();
    let (inserts, deletes) = mutation_batch(&base);
    let mut raw_resident = Parj::from_store(
        lubm_store(),
        EngineConfig {
            delta_compaction_threshold: 0,
            compress_replicas: false,
            ..config(true)
        },
    );
    let mut packed_resident = Parj::from_store(
        lubm_store(),
        EngineConfig {
            delta_compaction_threshold: 0,
            compress_min_values: 4,
            ..config(true)
        },
    );
    let mut packed_compacted = Parj::from_store(
        lubm_store(),
        EngineConfig {
            delta_compaction_threshold: 1,
            compress_min_values: 4,
            ..config(false)
        },
    );
    for engine in [&mut raw_resident, &mut packed_resident, &mut packed_compacted] {
        let out = engine
            .mutate()
            .insert_all(inserts.iter().cloned())
            .delete_all(deletes.iter().cloned())
            .run()
            .expect("mutation batch");
        assert_eq!(out.inserted, inserts.len() as u64);
        assert_eq!(out.deleted, deletes.len() as u64);
    }
    assert!(
        compressed_replicas(packed_resident.store()) > 0,
        "resident engine must keep compressed bases"
    );
    assert!(
        compressed_replicas(packed_compacted.store()) > 0,
        "compaction must re-compress replacement partitions"
    );
    for q in lubm::queries() {
        let baseline = raw_resident
            .request(&q.sparql)
            .threads(1)
            .ids_only()
            .run()
            .expect("uncompressed baseline")
            .ids
            .expect("ids mode returns ids");
        assert_all_combos_match(&mut packed_resident, &q.sparql, &q.name, &baseline);
        assert_all_combos_match(&mut packed_compacted, &q.sparql, &q.name, &baseline);
    }
}
