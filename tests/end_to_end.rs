//! Cross-crate integration tests: the full pipeline (generate → load →
//! parse → optimize → execute) against both benchmark generators, with
//! every probe strategy and thread count agreeing with each other and
//! with the brute-force reference evaluator.

use parj::baseline::{reference_eval, BaselineEngine, HashJoinEngine, MergeJoinEngine};
use parj::datagen::{lubm, watdiv};
use parj::{parse_query, Parj, ProbeStrategy, STerm};

/// Translates a SPARQL query into encoded patterns the baselines and
/// the oracle understand (no predicate variables, constants must
/// exist).
fn encode_patterns(
    engine: &mut Parj,
    sparql: &str,
) -> Option<(Vec<parj_optimizer::Pattern>, usize)> {
    let parsed = parse_query(sparql).unwrap();
    let dict = engine.store().dict();
    let mut names: Vec<String> = Vec::new();
    let mut var_id = |n: &str| -> u16 {
        if let Some(i) = names.iter().position(|x| x == n) {
            i as u16
        } else {
            names.push(n.to_string());
            (names.len() - 1) as u16
        }
    };
    let mut patterns = Vec::new();
    for p in &parsed.patterns {
        let s = match &p.s {
            STerm::Var(v) => parj_join::Atom::Var(var_id(v)),
            STerm::Term(t) => parj_join::Atom::Const(dict.resource_id(t)?),
        };
        let o = match &p.o {
            STerm::Var(v) => parj_join::Atom::Var(var_id(v)),
            STerm::Term(t) => parj_join::Atom::Const(dict.resource_id(t)?),
        };
        let pred = match &p.p {
            STerm::Var(_) => return None,
            STerm::Term(t) => dict.predicate_id(t)?,
        };
        patterns.push(parj_optimizer::Pattern { s, p: pred, o });
    }
    Some((patterns, names.len()))
}

/// Runs a query under every strategy × thread combination and checks
/// all counts agree; returns the count.
fn consistent_count(engine: &mut Parj, sparql: &str) -> u64 {
    let base = engine
        .request(sparql)
        .threads(1)
        .count_only()
        .run()
        .unwrap()
        .count;
    for strategy in ProbeStrategy::TABLE5 {
        for threads in [1, 4] {
            let got = engine
                .request(sparql)
                .threads(threads)
                .strategy(strategy)
                .count_only()
                .run()
                .unwrap()
                .count;
            assert_eq!(
                got, base,
                "{sparql}\nstrategy {strategy} threads {threads}: {got} vs {base}"
            );
        }
    }
    base
}

#[test]
fn lubm_queries_consistent_and_match_oracle() {
    let store = lubm::generate_store(&lubm::LubmConfig {
        universities: 1,
        seed: 11,
    });
    let mut engine = Parj::from_store(store, parj::EngineConfig::default());
    for q in lubm::queries() {
        let count = consistent_count(&mut engine, &q.sparql);
        // Oracle check (brute force is quadratic; 1 university is fine).
        if let Some((patterns, num_vars)) = encode_patterns(&mut engine, &q.sparql) {
            let expected = reference_eval(engine.store(), &patterns, num_vars).len() as u64;
            assert_eq!(count, expected, "{} disagrees with oracle", q.name);
            // Baselines must agree as well.
            assert_eq!(
                HashJoinEngine::default().run_count(engine.store(), &patterns),
                expected,
                "{} hash baseline",
                q.name
            );
            assert_eq!(
                MergeJoinEngine.run_count(engine.store(), &patterns),
                expected,
                "{} merge baseline",
                q.name
            );
        }
    }
}

#[test]
fn lubm_selectivity_profile() {
    // The queries must exhibit their designed selectivity classes, or
    // the Table 2 reproduction is meaningless.
    let store = lubm::generate_store(&lubm::LubmConfig {
        universities: 2,
        seed: 11,
    });
    let mut engine = Parj::from_store(store, parj::EngineConfig::default());
    let mut counts = std::collections::HashMap::new();
    for q in lubm::queries() {
        let c = engine.request(&q.sparql).count_only().run().unwrap().count;
        counts.insert(q.name.clone(), c);
    }
    // Non-selective / complex queries produce substantial results.
    for big in ["LUBM1", "LUBM2", "LUBM3", "LUBM7", "LUBM8", "LUBM9"] {
        assert!(counts[big] > 100, "{big} = {}", counts[big]);
    }
    // Selective queries stay small but non-empty.
    for small in ["LUBM4", "LUBM5", "LUBM6"] {
        assert!(
            counts[small] > 0 && counts[small] < 200,
            "{small} = {}",
            counts[small]
        );
    }
    // The advisor triangle is the heaviest of the complex family in
    // probe volume; sanity: bigger result than the selective ones.
    assert!(counts["LUBM9"] > counts["LUBM4"]);
}

#[test]
fn watdiv_queries_consistent_and_match_oracle() {
    let store = watdiv::generate_store(&watdiv::WatDivConfig { scale: 1, seed: 5 });
    let mut engine = Parj::from_store(store, parj::EngineConfig::default());
    for q in watdiv::all_queries() {
        let count = consistent_count(&mut engine, &q.sparql);
        if let Some((patterns, num_vars)) = encode_patterns(&mut engine, &q.sparql) {
            let expected = reference_eval(engine.store(), &patterns, num_vars).len() as u64;
            assert_eq!(count, expected, "{} disagrees with oracle", q.name);
        }
    }
}

#[test]
fn watdiv_workload_selectivity_classes() {
    let store = watdiv::generate_store(&watdiv::WatDivConfig { scale: 2, seed: 5 });
    let mut engine = Parj::from_store(store, parj::EngineConfig::default());
    let count =
        |e: &mut Parj, sparql: &str| e.request(sparql).count_only().run().unwrap().count;

    // IL-3 (unanchored friendOf chains) must dwarf IL-1/IL-2 (anchored)
    // and grow with length — that contrast is Table 4's entire point.
    let il1: Vec<u64> = watdiv::incremental_linear(1)
        .iter()
        .map(|q| count(&mut engine, &q.sparql))
        .collect();
    let il3: Vec<u64> = watdiv::incremental_linear(3)
        .iter()
        .map(|q| count(&mut engine, &q.sparql))
        .collect();
    assert!(
        il3[0] > 10 * il1[0].max(1),
        "IL-3-5 ({}) should dwarf IL-1-5 ({})",
        il3[0],
        il1[0]
    );
    assert!(il3[0] > 1000, "IL-3-5 too small: {}", il3[0]);
    // Unanchored chains keep growing with path length.
    assert!(
        il3[5] > il3[0],
        "IL-3-10 ({}) should exceed IL-3-5 ({})",
        il3[5],
        il3[0]
    );
    // ML-1 anchored stays far below ML-2 unanchored.
    let ml1: u64 = watdiv::mixed_linear(1)
        .iter()
        .map(|q| count(&mut engine, &q.sparql))
        .sum();
    let ml2: u64 = watdiv::mixed_linear(2)
        .iter()
        .map(|q| count(&mut engine, &q.sparql))
        .sum();
    assert!(ml2 > ml1, "ML-2 total {ml2} should exceed ML-1 total {ml1}");
    // The C3 friend-likes triangle has results (the paper's C3 is huge).
    let c3 = watdiv::basic_workload()
        .into_iter()
        .find(|q| q.name == "C3")
        .unwrap();
    assert!(count(&mut engine, &c3.sparql) > 0, "C3 empty");
}

#[test]
fn full_result_handling_agrees_with_silent_mode() {
    let store = lubm::generate_store(&lubm::LubmConfig {
        universities: 1,
        seed: 3,
    });
    let mut engine = Parj::from_store(store, parj::EngineConfig::default());
    for q in lubm::queries().iter().take(6) {
        let count = engine.request(&q.sparql).count_only().run().unwrap().count;
        let full = engine.request(&q.sparql).run().unwrap().into_result();
        assert_eq!(count, full.rows.len() as u64, "{}", q.name);
        // Every decoded row has the projection's arity.
        for row in &full.rows {
            assert_eq!(row.len(), full.vars.len());
        }
    }
}

#[test]
fn snapshot_roundtrip_preserves_query_results() {
    let store = watdiv::generate_store(&watdiv::WatDivConfig { scale: 1, seed: 9 });
    let mut engine = Parj::from_store(store, parj::EngineConfig::default());
    let dir = std::env::temp_dir().join(format!("parj-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("watdiv.parj");
    engine.save_snapshot(&path).unwrap();
    let mut restored = Parj::load_snapshot(&path, parj::EngineConfig::default()).unwrap();
    for q in watdiv::basic_workload() {
        assert_eq!(
            engine.request(&q.sparql).count_only().run().unwrap().count,
            restored.request(&q.sparql).count_only().run().unwrap().count,
            "{} after snapshot",
            q.name
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ntriples_roundtrip_through_engine() {
    // Generate → serialize → reload through the N-Triples parser →
    // identical store.
    let cfg = lubm::LubmConfig {
        universities: 1,
        seed: 21,
    };
    let mut text = Vec::new();
    lubm::write_ntriples(&cfg, &mut text).unwrap();
    let text = String::from_utf8(text).unwrap();

    let mut via_text = Parj::new();
    via_text.load_ntriples_str(&text).unwrap();
    let mut via_gen = Parj::from_store(lubm::generate_store(&cfg), parj::EngineConfig::default());
    assert_eq!(via_text.num_triples(), via_gen.num_triples());
    for q in lubm::queries() {
        assert_eq!(
            via_text.request(&q.sparql).count_only().run().unwrap().count,
            via_gen.request(&q.sparql).count_only().run().unwrap().count,
            "{}",
            q.name
        );
    }
}
