//! Workspace-level property tests: for *arbitrary* random graphs and
//! random (connected) BGPs, the full PARJ pipeline — SPARQL text →
//! parser → translation → optimizer → adaptive parallel executor —
//! produces exactly the solution multiset of the brute-force reference
//! evaluator, under every probe strategy and thread count.

use proptest::prelude::*;

use parj::baseline::{reference_eval, BaselineEngine, HashJoinEngine, MergeJoinEngine};
use parj::{EngineConfig, Parj, ParjError, ProbeStrategy, Term};

const RESOURCES: u32 = 20;
const PREDICATES: u32 = 4;
const VARS: u16 = 4;

/// One slot of a random pattern: variable index or resource constant.
#[derive(Debug, Clone, Copy)]
enum Slot {
    Var(u16),
    Const(u32),
}

fn arb_slot() -> impl Strategy<Value = Slot> {
    prop_oneof![
        3 => (0..VARS).prop_map(Slot::Var),
        1 => (0..RESOURCES).prop_map(Slot::Const),
    ]
}

#[derive(Debug, Clone)]
struct Case {
    triples: Vec<(u32, u32, u32)>,
    patterns: Vec<(Slot, u32, Slot)>,
}

fn arb_case() -> impl Strategy<Value = Case> {
    let triples = proptest::collection::vec(
        (0..RESOURCES, 0..PREDICATES, 0..RESOURCES),
        1..120,
    );
    let patterns = proptest::collection::vec((arb_slot(), 0..PREDICATES, arb_slot()), 1..4);
    (triples, patterns).prop_map(|(triples, patterns)| Case { triples, patterns })
}

fn iri(i: u32) -> String {
    format!("http://t/r{i}")
}

fn pred_iri(p: u32) -> String {
    format!("http://t/p{p}")
}

fn slot_sparql(s: Slot) -> String {
    match s {
        Slot::Var(v) => format!("?v{v}"),
        Slot::Const(c) => format!("<{}>", iri(c)),
    }
}

/// Builds the engine, the SPARQL text and the encoded patterns for a
/// case. Every resource/predicate id is pre-seeded into the dictionary
/// so constants always resolve and ids equal the raw numbers.
fn build(case: &Case) -> (Parj, String, Vec<parj_optimizer::Pattern>, usize) {
    let mut engine = Parj::builder().threads(1).build();
    // Seed dense dictionaries (generation order = id order).
    let mut nt = String::new();
    for r in 0..RESOURCES {
        nt.push_str(&format!("<{}> <http://t/seed> <{}> .\n", iri(r), iri(r)));
    }
    for (s, p, o) in &case.triples {
        nt.push_str(&format!(
            "<{}> <{}> <{}> .\n",
            iri(*s),
            pred_iri(*p),
            iri(*o)
        ));
    }
    engine.load_ntriples_str(&nt).expect("seed engine");
    let body: String = case
        .patterns
        .iter()
        .map(|(s, p, o)| {
            format!(
                "{} <{}> {} . ",
                slot_sparql(*s),
                pred_iri(*p),
                slot_sparql(*o)
            )
        })
        .collect();
    // Variable numbering: first-occurrence order, matching both the
    // engine's translator and the oracle's binding layout. The SELECT
    // clause projects in exactly this order so engine rows and oracle
    // rows are slot-for-slot comparable.
    let mut order: Vec<u16> = Vec::new();
    for (s, _, o) in &case.patterns {
        for slot in [s, o] {
            if let Slot::Var(v) = slot {
                if !order.contains(v) {
                    order.push(*v);
                }
            }
        }
    }
    let select: String = if order.is_empty() {
        "*".to_string()
    } else {
        order.iter().map(|v| format!("?v{v} ")).collect::<String>()
    };
    let sparql = format!("SELECT {select} WHERE {{ {body}}}");
    let atom = |s: Slot| match s {
        Slot::Var(v) => parj_join::Atom::Var(order.iter().position(|&x| x == v).unwrap() as u16),
        Slot::Const(c) => parj_join::Atom::Const(c),
    };
    let patterns: Vec<parj_optimizer::Pattern> = case
        .patterns
        .iter()
        .map(|(s, p, o)| parj_optimizer::Pattern {
            s: atom(*s),
            // Predicate ids: "seed" is predicate 0, then p0.. follow in
            // first-use order — resolve via the dictionary instead of
            // assuming.
            p: *p,
            o: atom(*o),
        })
        .collect();
    (engine, sparql, patterns, order.len())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Engine count == oracle count == baseline counts, under all
    /// strategies and 1/4 threads; materialized rows match as multisets.
    #[test]
    fn engine_matches_oracle(case in arb_case()) {
        let (mut engine, sparql, mut patterns, num_vars) = build(&case);
        // Fix up predicate ids via the dictionary (seed predicate is 0).
        let dict = engine.store().dict();
        // A predicate that never occurs in the triples has no dictionary
        // id; map it to a sentinel that matches nothing (the engine
        // reaches the same conclusion via its empty-translation path).
        let pred_ids: Vec<u32> = (0..PREDICATES)
            .map(|p| {
                dict.predicate_id(&Term::iri(pred_iri(p)))
                    .unwrap_or(u32::MAX)
            })
            .collect();
        for (pat, (_, p, _)) in patterns.iter_mut().zip(&case.patterns) {
            pat.p = pred_ids[*p as usize];
        }

        let expected_rows = reference_eval(engine.store(), &patterns, num_vars);
        let expected = expected_rows.len() as u64;

        let result = engine.request(&sparql).count_only().run();
        let count = match result {
            Ok(out) => out.count,
            Err(ParjError::Optimize(parj_optimizer::OptimizeError::Disconnected)) => {
                // Left-deep pipelines reject pure cartesian products;
                // the oracle would enumerate them. Skip.
                return Ok(());
            }
            Err(e) => return Err(TestCaseError::fail(format!("engine error: {e}"))),
        };
        prop_assert_eq!(count, expected, "query {}", sparql);

        for strategy in ProbeStrategy::TABLE5 {
            for threads in [1usize, 4] {
                let c = engine
                    .request(&sparql)
                    .threads(threads)
                    .strategy(strategy)
                    .count_only()
                    .run()
                    .unwrap()
                    .count;
                prop_assert_eq!(c, expected, "{} under {} x{}", sparql, strategy, threads);
            }
        }

        // Baselines agree (textual order).
        prop_assert_eq!(HashJoinEngine::default().run_count(engine.store(), &patterns), expected);
        prop_assert_eq!(MergeJoinEngine.run_count(engine.store(), &patterns), expected);

        // Row-level multiset equality (projection = all vars in first-
        // occurrence order, matching the oracle's binding layout).
        if num_vars > 0 {
            let mut rows = engine
                .request(&sparql)
                .ids_only()
                .run()
                .map(parj::QueryOutcome::into_ids)
                .unwrap()
                .0;
            rows.sort_unstable();
            let mut oracle_rows = expected_rows;
            oracle_rows.sort_unstable();
            prop_assert_eq!(rows, oracle_rows, "rows for {}", sparql);
        }
    }

    /// Snapshots preserve query results for arbitrary graphs.
    #[test]
    fn snapshot_faithful(case in arb_case()) {
        let (mut engine, sparql, _, _) = build(&case);
        let count = match engine.request(&sparql).count_only().run() {
            Ok(out) => out.count,
            Err(_) => return Ok(()),
        };
        let bytes = {
            engine.finalize();
            engine.store().to_snapshot_bytes()
        };
        let store = parj::TripleStore::from_snapshot_bytes(&bytes).unwrap();
        let mut restored = Parj::from_store(store, EngineConfig::default());
        let restored_count = restored.request(&sparql).count_only().run().unwrap().count;
        prop_assert_eq!(restored_count, count);
    }
}
