//! Property test for the §6 RDFS extension: for arbitrary class
//! hierarchies and type assertions, the reasoning engine's answers equal
//! those of a plain engine over the *forward-chained materialization* —
//! the semantics the paper says its pipelined unions should provide
//! "without the need to materialize the implications".

use proptest::prelude::*;

use parj::{Parj, Term};

const CLASSES: u32 = 6;
const ENTITIES: u32 = 12;
const PROPS: u32 = 3;

const RDF_TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
const SUBCLASS: &str = "http://www.w3.org/2000/01/rdf-schema#subClassOf";
const SUBPROP: &str = "http://www.w3.org/2000/01/rdf-schema#subPropertyOf";

fn class(i: u32) -> Term {
    Term::iri(format!("http://t/C{i}"))
}

fn entity(i: u32) -> Term {
    Term::iri(format!("http://t/e{i}"))
}

fn prop(i: u32) -> String {
    format!("http://t/p{i}")
}

#[derive(Debug, Clone)]
struct Case {
    /// `(child, parent)` subclass edges (may contain cycles).
    subclass: Vec<(u32, u32)>,
    /// `(child, parent)` subproperty edges.
    subprop: Vec<(u32, u32)>,
    /// `(entity, class)` type assertions.
    types: Vec<(u32, u32)>,
    /// `(s, p, o)` property assertions.
    edges: Vec<(u32, u32, u32)>,
}

fn arb_case() -> impl Strategy<Value = Case> {
    (
        proptest::collection::vec((0..CLASSES, 0..CLASSES), 0..8),
        proptest::collection::vec((0..PROPS, 0..PROPS), 0..4),
        proptest::collection::vec((0..ENTITIES, 0..CLASSES), 1..20),
        proptest::collection::vec((0..ENTITIES, 0..PROPS, 0..ENTITIES), 1..20),
    )
        .prop_map(|(subclass, subprop, types, edges)| Case {
            subclass,
            subprop,
            types,
            edges,
        })
}

/// Transitive-reflexive superclass closure per node over `edges`.
fn ancestors(n: u32, edges: &[(u32, u32)], limit: u32) -> Vec<u32> {
    let mut seen = vec![n];
    let mut stack = vec![n];
    while let Some(x) = stack.pop() {
        for &(c, p) in edges {
            if c == x && !seen.contains(&p) && p < limit {
                seen.push(p);
                stack.push(p);
            }
        }
    }
    seen
}

fn load_base(engine: &mut Parj, case: &Case) {
    let base = case
        .subclass
        .iter()
        .map(|&(c, p)| (class(c), Term::iri(SUBCLASS), class(p)))
        .chain(
            case.subprop
                .iter()
                .map(|&(c, p)| (Term::iri(prop(c)), Term::iri(SUBPROP), Term::iri(prop(p)))),
        )
        .chain(
            case.types
                .iter()
                .map(|&(e, c)| (entity(e), Term::iri(RDF_TYPE), class(c))),
        )
        .chain(
            case.edges
                .iter()
                .map(|&(s, p, o)| (entity(s), Term::iri(prop(p)), entity(o))),
        );
    engine
        .mutate()
        .insert_all(base)
        .run()
        .expect("load base triples");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn reasoning_equals_materialization(case in arb_case()) {
        // Reasoning engine over the raw data.
        let mut smart = Parj::builder().threads(2).rdfs_reasoning(true).build();
        load_base(&mut smart, &case);

        // Plain engine over the forward-chained closure.
        let mut mat = Parj::builder().threads(2).build();
        load_base(&mut mat, &case);
        let mut closure = Vec::new();
        for &(e, c) in &case.types {
            for anc in ancestors(c, &case.subclass, CLASSES) {
                closure.push((entity(e), Term::iri(RDF_TYPE), class(anc)));
            }
        }
        for &(s, p, o) in &case.edges {
            for anc in ancestors(p, &case.subprop, PROPS) {
                closure.push((entity(s), Term::iri(prop(anc)), entity(o)));
            }
        }
        mat.mutate().insert_all(closure).run().unwrap();

        // Every type query and property query must agree. Materialized
        // stores are sets, so plain counts there already equal distinct
        // solution counts — which is exactly what reasoning mode returns.
        for c in 0..CLASSES {
            let q = format!("SELECT ?x WHERE {{ ?x <{RDF_TYPE}> <http://t/C{c}> }}");
            let got = smart.request(&q).count_only().run().unwrap().count;
            let expect = mat.request(&q).count_only().run().unwrap().count;
            prop_assert_eq!(got, expect, "type query C{}", c);
        }
        for p in 0..PROPS {
            let q = format!("SELECT ?a ?b WHERE {{ ?a <{}> ?b }}", prop(p));
            let got = smart.request(&q).count_only().run().unwrap().count;
            let expect = mat.request(&q).count_only().run().unwrap().count;
            prop_assert_eq!(got, expect, "property query p{}", p);
        }
        // A join mixing both expansions.
        let q = format!(
            "SELECT ?a ?b WHERE {{ ?a <{}> ?b . ?b <{RDF_TYPE}> <http://t/C0> }}",
            prop(0)
        );
        let got = smart.request(&q).count_only().run().unwrap().count;
        let expect = mat.request(&q).count_only().run().unwrap().count;
        prop_assert_eq!(got, expect, "join query");
    }
}
