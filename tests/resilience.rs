//! Query-lifecycle resilience at the public engine surface: a join
//! producing hundreds of millions of rows is stopped — from another
//! thread, by a deadline, or by a row budget — within bounded time,
//! returning a classified error with partial-progress statistics
//! instead of running away with the process.

use std::sync::OnceLock;
use std::time::{Duration, Instant};

use parj::{CancelToken, Parj, ParjError, SharedParj};

/// `N` subjects × `K` values per predicate → the two-pattern join below
/// produces `N × K²` rows (≈216M): seconds of work, so every abort path
/// gets exercised mid-flight.
const N: usize = 150;
const K: usize = 1200;
const QUERY: &str = "SELECT ?x ?y ?z WHERE { ?x <http://e/p> ?y . ?x <http://e/q> ?z }";

/// Abort paths should return almost instantly after tripping; this
/// bound is deliberately generous so slow CI cannot flake it.
const BOUND: Duration = Duration::from_secs(30);

fn big_engine() -> &'static SharedParj {
    static ENGINE: OnceLock<SharedParj> = OnceLock::new();
    ENGINE.get_or_init(|| {
        let mut e = Parj::builder().threads(4).build();
        let mut nt = String::with_capacity(N * K * 2 * 64);
        for s in 0..N {
            for v in 0..K {
                nt.push_str(&format!(
                    "<http://e/s{s}> <http://e/p> <http://e/v{v}> .\n\
                     <http://e/s{s}> <http://e/q> <http://e/w{v}> .\n"
                ));
            }
        }
        e.load_ntriples_str(&nt).expect("seed engine");
        SharedParj::new(e)
    })
}

#[test]
fn cancel_from_another_thread_within_bounded_time() {
    let engine = big_engine();
    let token = CancelToken::new();
    let canceller = {
        let token = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(25));
            token.cancel();
        })
    };
    let t0 = Instant::now();
    let res = engine.request(QUERY).cancel(token.clone()).count_only().run();
    let elapsed = t0.elapsed();
    canceller.join().unwrap();
    match res {
        Err(ParjError::Cancelled { .. }) => {}
        other => panic!("expected cancellation, got {other:?}"),
    }
    assert!(elapsed < BOUND, "cancel took {elapsed:?}");
    // The shared engine survives; the token re-arms for another run.
    token.reset();
    let k = engine
        .request("SELECT ?y WHERE { <http://e/s0> <http://e/p> ?y }")
        .cancel(token.clone())
        .count_only()
        .run()
        .unwrap()
        .count;
    assert_eq!(k as usize, K);
}

#[test]
fn deadline_stops_runaway_join() {
    let engine = big_engine();
    let limit = Duration::from_millis(30);
    let t0 = Instant::now();
    let res = engine.request(QUERY).timeout(limit).count_only().run();
    let wall = t0.elapsed();
    match res {
        Err(ParjError::DeadlineExceeded { elapsed, partial }) => {
            assert!(elapsed >= limit, "reported {elapsed:?} under the limit");
            assert!(partial.exec_micros > 0);
        }
        other => panic!("expected deadline error, got {other:?}"),
    }
    assert!(wall < BOUND, "deadline abort took {wall:?}");
}

#[test]
fn row_budget_stops_runaway_join() {
    let engine = big_engine();
    let t0 = Instant::now();
    let res = engine.request(QUERY).max_rows(10_000).count_only().run();
    let wall = t0.elapsed();
    match res {
        Err(ParjError::BudgetExceeded { rows, partial }) => {
            assert!(rows > 10_000, "trip must exceed the budget: {rows}");
            // Partial stats settle after late workers drain their
            // pending batches, so they can only grow past the trip.
            assert!(partial.rows >= rows);
            // Bounded overshoot: at most threads × GUARD_BATCH rows
            // past the limit (plus one batch in flight per worker).
            let max_overshoot = (4 + 1) as u64 * parj::GUARD_BATCH as u64;
            assert!(
                rows <= 10_000 + max_overshoot,
                "overshoot beyond contract: {rows}"
            );
            assert!(partial.plan.contains("scan"));
        }
        other => panic!("expected budget error, got {other:?}"),
    }
    assert!(wall < BOUND, "budget abort took {wall:?}");
}

#[test]
fn full_result_path_honors_the_guard() {
    let engine = big_engine();
    // The materializing path (CollectSink + decode) fails the same way
    // silent mode does — no partial result rows leak out.
    match engine.request(QUERY).max_rows(5_000).run() {
        Err(ParjError::BudgetExceeded { rows, .. }) => assert!(rows > 5_000),
        other => panic!(
            "expected budget error from the full-result path, got rows={:?}",
            other.map(|r| r.rows.map(|rows| rows.len()))
        ),
    }
}

#[test]
fn generous_limits_do_not_disturb_results() {
    let engine = big_engine();
    let bounded = "SELECT ?y WHERE { <http://e/s1> <http://e/p> ?y }";
    let strict_free = engine.request(bounded).count_only().run().unwrap().count;
    let guarded = engine
        .request(bounded)
        .timeout(Duration::from_secs(300))
        .max_rows(u64::MAX)
        .count_only()
        .run()
        .unwrap()
        .count;
    assert_eq!(strict_free, guarded);
    assert_eq!(guarded as usize, K);
}
