//! Large-scale stress test, `#[ignore]`d by default (minutes of CPU):
//!
//! ```sh
//! cargo test --release --test stress -- --ignored
//! ```
//!
//! Builds a LUBM-like store an order of magnitude above the normal test
//! scales, validates all storage invariants, runs the full query suite
//! under every probe strategy, and exercises snapshot round-tripping at
//! size.

use parj::datagen::lubm;
use parj::{EngineConfig, Parj, ProbeStrategy};

#[test]
#[ignore = "minutes of CPU; run with --ignored for release validation"]
fn lubm_at_scale() {
    let store = lubm::generate_store(&lubm::LubmConfig {
        universities: 60,
        seed: 1,
    });
    assert!(store.num_triples() > 800_000, "{}", store.num_triples());
    store.check_invariants().expect("invariants at scale");

    let bytes = store.to_snapshot_bytes();
    let mut engine = Parj::from_store(store, EngineConfig::default());

    // Strategy-invariance of every query at scale.
    let mut baseline_counts = Vec::new();
    for q in lubm::queries() {
        let out = engine.request(&q.sparql).count_only().run().expect("query runs");
        assert!(out.stats.exec_micros < 60_000_000, "{} took too long", q.name);
        baseline_counts.push((q.name.clone(), out.count));
    }
    for strategy in ProbeStrategy::TABLE5 {
        for q in lubm::queries() {
            let count = engine
                .request(&q.sparql)
                .threads(4)
                .strategy(strategy)
                .count_only()
                .run()
                .expect("runs")
                .count;
            let expected = baseline_counts
                .iter()
                .find(|(n, _)| n == &q.name)
                .expect("known query")
                .1;
            assert_eq!(count, expected, "{} under {strategy}", q.name);
        }
    }

    // Snapshot round-trip at size.
    let restored = parj::TripleStore::from_snapshot_bytes(&bytes).expect("snapshot decodes");
    let mut restored = Parj::from_store(restored, EngineConfig::default());
    for (name, count) in &baseline_counts {
        let q = lubm::queries().into_iter().find(|q| &q.name == name).expect("query");
        let restored_count = restored.request(&q.sparql).count_only().run().unwrap().count;
        assert_eq!(restored_count, *count, "{name} after snapshot");
    }
}
