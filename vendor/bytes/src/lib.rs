//! Offline vendored subset of the `bytes` crate.
//!
//! The build environment has no network access and no cargo registry
//! cache, so the workspace vendors the *minimal* API surface it uses:
//! [`Buf`] implemented for `&[u8]` and [`BufMut`] implemented for
//! `Vec<u8>`, with little-endian integer accessors. Semantics match the
//! upstream crate for this subset (including panics on short reads so
//! callers' `remaining()` guards keep their meaning).

#![forbid(unsafe_code)]

/// Read access to a contiguous buffer, advancing an internal cursor.
pub trait Buf {
    /// Bytes left between the cursor and the end of the buffer.
    fn remaining(&self) -> usize;

    /// Returns the bytes at the cursor.
    fn chunk(&self) -> &[u8];

    /// Advances the cursor by `cnt` bytes. Panics if `cnt > remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Copies `dst.len()` bytes into `dst`, advancing. Panics when short.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        *self = &self[cnt..];
    }
}

/// Write access to a growable buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut out: Vec<u8> = Vec::new();
        out.put_u8(7);
        out.put_u16_le(0xBEEF);
        out.put_u32_le(0xDEAD_BEEF);
        out.put_u64_le(0x0123_4567_89AB_CDEF);
        out.put_slice(b"xyz");
        let mut buf: &[u8] = &out;
        assert_eq!(buf.remaining(), 1 + 2 + 4 + 8 + 3);
        assert_eq!(buf.get_u8(), 7);
        assert_eq!(buf.get_u16_le(), 0xBEEF);
        assert_eq!(buf.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(buf.get_u64_le(), 0x0123_4567_89AB_CDEF);
        let mut rest = [0u8; 3];
        buf.copy_to_slice(&mut rest);
        assert_eq!(&rest, b"xyz");
        assert_eq!(buf.remaining(), 0);
    }

    #[test]
    fn advance_moves_cursor() {
        let mut buf: &[u8] = &[1, 2, 3, 4];
        buf.advance(2);
        assert_eq!(buf.get_u8(), 3);
    }
}
