//! Offline vendored subset of `criterion`.
//!
//! The build environment has no network access, so this crate provides
//! the benchmark API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `Bencher::{iter, iter_batched}`, `BenchmarkId`,
//! `Throughput`, `BatchSize` and the `criterion_group!`/
//! `criterion_main!` macros — backed by a simple median-of-samples
//! timing harness instead of upstream's statistical machinery.
//!
//! Reported numbers are indicative, not rigorous: each benchmark runs a
//! short warm-up, then a fixed number of timed samples, and prints the
//! median per-iteration time (plus throughput when configured). Set
//! `CRITERION_QUICK=1` to cut sample counts for smoke runs.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How batched inputs are sized; accepted for API compatibility and
/// otherwise ignored by this harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Units the measured time is normalized against when reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A two-part benchmark identifier, `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("LUBM2", "binary")` → `LUBM2/binary`.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            full: format!("{function}/{parameter}"),
        }
    }

    /// `BenchmarkId::from_parameter(64)` → `64`.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.full)
    }
}

fn quick_mode() -> bool {
    std::env::var("CRITERION_QUICK").is_ok_and(|v| v != "0")
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_count: usize,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_count: if quick_mode() { 5 } else { 15 },
        }
    }

    /// Times `routine`, auto-scaling iterations so each sample is long
    /// enough for the clock to resolve.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up doubles the iteration count until one sample takes
        // at least ~2ms (capped so very slow routines still finish).
        let mut iters: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let elapsed = t.elapsed();
            if elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }
        self.iters_per_sample = iters;
        for _ in 0..self.sample_count {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            self.samples.push(t.elapsed());
        }
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.iters_per_sample = 1;
        let count = self.sample_count * 3;
        for _ in 0..count {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(t.elapsed());
        }
    }

    fn median_per_iter(&self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        let mut s = self.samples.clone();
        s.sort();
        s[s.len() / 2] / self.iters_per_sample.max(1) as u32
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn report(name: &str, per_iter: Duration, throughput: Option<Throughput>) {
    let mut line = format!("{name:<48} time: {}", fmt_duration(per_iter));
    if let Some(tp) = throughput {
        let secs = per_iter.as_secs_f64().max(1e-12);
        match tp {
            Throughput::Elements(n) => {
                line.push_str(&format!("  thrpt: {:.2} Melem/s", n as f64 / secs / 1e6));
            }
            Throughput::Bytes(n) => {
                line.push_str(&format!("  thrpt: {:.2} MiB/s", n as f64 / secs / (1 << 20) as f64));
            }
        }
    }
    println!("{line}");
}

/// Top-level benchmark driver.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // First CLI arg (if any) filters benchmarks by substring, like
        // `cargo bench -- <filter>`.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    fn matches(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Runs one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Display, mut f: F) {
        let name = name.to_string();
        if !self.matches(&name) {
            return;
        }
        let mut b = Bencher::new();
        f(&mut b);
        report(&name, b.median_per_iter(), None);
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix and throughput config.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used for subsequent benchmarks' reports.
    pub fn throughput(&mut self, tp: Throughput) -> &mut Self {
        self.throughput = Some(tp);
        self
    }

    /// Accepted for API compatibility; sample counts are fixed here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; measurement time is adaptive.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    fn run(&mut self, id: String, f: &mut dyn FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id);
        if !self.criterion.matches(&full) {
            return;
        }
        let mut b = Bencher::new();
        f(&mut b);
        report(&full, b.median_per_iter(), self.throughput);
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        self.run(id.to_string(), &mut f);
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.to_string(), &mut |b| f(b, input));
    }

    /// Ends the group (separator line in the report).
    pub fn finish(self) {
        println!();
    }
}

/// Re-export matching upstream's `criterion::black_box`.
pub use std::hint::black_box;

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::new();
        b.iter(|| (0..100u64).sum::<u64>());
        assert!(!b.samples.is_empty());
        assert!(b.median_per_iter() > Duration::ZERO);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        std::env::set_var("CRITERION_QUICK", "1");
        let mut c = Criterion { filter: None };
        let mut g = c.benchmark_group("demo");
        g.throughput(Throughput::Elements(10));
        g.bench_function("sum", |b| b.iter(|| (0..10u64).product::<u64>()));
        g.bench_with_input(BenchmarkId::new("param", 3), &3u64, |b, &n| {
            b.iter(|| n * 2);
        });
        g.finish();
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::LargeInput);
        });
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
