//! Spin-loop hints, mirroring `loom::hint`.

/// Signals a busy-wait; also a scheduling decision point here.
pub fn spin_loop() {
    crate::sched::step();
    std::hint::spin_loop();
}
