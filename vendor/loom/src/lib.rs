//! Offline vendored subset of `loom`.
//!
//! The build environment has no network or registry access, so this
//! crate provides the `loom` API surface the workspace's concurrency
//! models use. It is **not** the upstream exhaustive DPOR model
//! checker: instead of enumerating every interleaving under a
//! cooperative scheduler, [`model`] re-runs the model body many times
//! on **real OS threads** while a deterministic per-iteration
//! pseudo-random schedule injects yields and reschedule points at
//! every synchronization operation (atomic access, lock acquisition,
//! thread spawn). That explores a broad, reproducible sample of
//! interleavings — a stress-style checker with loom's API shape — and
//! every assertion a model makes is still a hard assertion.
//!
//! Differences from upstream loom, documented so models stay honest:
//!
//! * Exploration is probabilistic, not exhaustive. The iteration count
//!   comes from `LOOM_ITERS` (default 64, not loom's
//!   `LOOM_MAX_BRANCHES`).
//! * Atomic orderings are executed with the *requested* ordering on
//!   real hardware; weak-memory reorderings beyond what the host CPU
//!   exhibits are not simulated.
//! * `loom::thread::scope` is provided (upstream loom has no scoped
//!   threads); models and shimmed production code may rely on it.
//! * Constructors (`AtomicU64::new`, `Mutex::new`, …) are `const`
//!   where the `std` counterparts are, so `static` initializers that
//!   compile against `std` also compile against this shim.
//!
//! A model failure reprints the failing iteration's schedule seed;
//! setting `LOOM_SEED` to that value replays the same schedule.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hint;
mod sched;
pub mod sync;
pub mod thread;

/// Runs `f` under many deterministic pseudo-random schedules.
///
/// Each iteration seeds the scheduler differently, so synchronization
/// operations interleave differently from run to run while any single
/// seed replays identically. A panic inside `f` (a failed model
/// assertion) surfaces after printing the seed that produced it.
pub fn model<F: Fn()>(f: F) {
    let iters: u64 = std::env::var("LOOM_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    let fixed_seed: Option<u64> = std::env::var("LOOM_SEED")
        .ok()
        .and_then(|v| v.parse().ok());
    for iter in 0..iters {
        // ordering: seed publication is Relaxed — worker threads of the
        // model are spawned after the store and joined before the next,
        // so spawn/join edges order it; the atomic only avoids a lock.
        let seed = fixed_seed.unwrap_or(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(iter + 1));
        sched::begin_iteration(seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(&f));
        if let Err(payload) = outcome {
            eprintln!("loom (vendored shim): model failed at iteration {iter} with schedule seed {seed}; set LOOM_SEED={seed} to replay");
            std::panic::resume_unwind(payload);
        }
        if fixed_seed.is_some() {
            break;
        }
    }
}
