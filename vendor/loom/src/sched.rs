//! The randomized schedule explorer behind [`crate::model`].
//!
//! Every synchronization operation in the shim calls [`step`]. A
//! thread-local xorshift generator — seeded from the iteration seed
//! plus a per-thread counter so sibling threads diverge — decides
//! whether to keep running, yield the OS scheduler, or force a
//! reschedule with a zero-length sleep. The distribution is biased
//! toward "keep running" so models still make progress, while the
//! yield points move around from iteration to iteration.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Seed for the current model iteration.
// ordering: Relaxed — written between iterations while only the model
// driver thread runs; thread spawn edges publish it to workers.
static ITER_SEED: AtomicU64 = AtomicU64::new(0);

/// Distinguishes threads born in the same iteration.
// ordering: Relaxed — fetch_add only needs uniqueness, not ordering.
static THREAD_SALT: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static RNG: Cell<u64> = const { Cell::new(0) };
    static RNG_EPOCH: Cell<u64> = const { Cell::new(u64::MAX) };
}

/// Installs `seed` as the schedule for the next iteration.
pub(crate) fn begin_iteration(seed: u64) {
    ITER_SEED.store(seed, Ordering::Relaxed);
    THREAD_SALT.store(1, Ordering::Relaxed);
}

fn next(state: u64) -> u64 {
    // xorshift64*: cheap, full-period, good enough to scatter yields.
    let mut x = state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// One scheduling decision point; called before every shimmed
/// synchronization operation.
pub(crate) fn step() {
    let seed = ITER_SEED.load(Ordering::Relaxed);
    let draw = RNG.with(|rng| {
        let fresh = RNG_EPOCH.with(|e| {
            let stale = e.get() != seed;
            if stale {
                e.set(seed);
            }
            stale
        });
        if fresh || rng.get() == 0 {
            let salt = THREAD_SALT.fetch_add(1, Ordering::Relaxed);
            let state = seed ^ salt.wrapping_mul(0xA24B_AED4_963E_E407);
            // xorshift sticks at zero; nudge the one dead state.
            rng.set(if state == 0 { 0x1234_5678_9ABC_DEF0 } else { state });
        }
        let v = next(rng.get());
        rng.set(v);
        v
    });
    // ~1/4 of sync ops yield; ~1/32 force a stronger reschedule.
    if draw.is_multiple_of(32) {
        std::thread::sleep(std::time::Duration::from_nanos(1));
    } else if draw.is_multiple_of(4) {
        std::thread::yield_now();
    }
}
