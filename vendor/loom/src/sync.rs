//! Synchronization shims, mirroring `loom::sync`.
//!
//! Atomics wrap `std` atomics and execute with the caller's requested
//! ordering; every operation is a scheduling decision point. `Mutex`
//! and `RwLock` use the non-poisoning interface the workspace's
//! `parking_lot` vendor exposes, so shimmed code is source-compatible
//! in both modes.

use std::sync::{self, TryLockError};

use crate::sched;

pub use std::sync::Arc;

/// Atomic types with schedule injection.
pub mod atomic {
    use super::sched;

    pub use std::sync::atomic::{fence, Ordering};

    macro_rules! shim_atomic {
        ($(#[$doc:meta])* $name:ident, $std:ident, $ty:ty) => {
            $(#[$doc])*
            #[derive(Debug, Default)]
            pub struct $name(std::sync::atomic::$std);

            impl $name {
                /// Creates a new atomic holding `v`.
                pub const fn new(v: $ty) -> Self {
                    Self(std::sync::atomic::$std::new(v))
                }

                /// Atomic load.
                pub fn load(&self, order: Ordering) -> $ty {
                    sched::step();
                    self.0.load(order)
                }

                /// Atomic store.
                pub fn store(&self, v: $ty, order: Ordering) {
                    sched::step();
                    self.0.store(v, order);
                }

                /// Atomic swap, returning the previous value.
                pub fn swap(&self, v: $ty, order: Ordering) -> $ty {
                    sched::step();
                    self.0.swap(v, order)
                }

                /// Atomic compare-and-exchange.
                pub fn compare_exchange(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    sched::step();
                    self.0.compare_exchange(current, new, success, failure)
                }

                /// Weak compare-and-exchange (may fail spuriously).
                pub fn compare_exchange_weak(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    sched::step();
                    self.0.compare_exchange_weak(current, new, success, failure)
                }

                /// CAS loop applying `f` until it sticks or returns `None`.
                pub fn fetch_update<F>(
                    &self,
                    set_order: Ordering,
                    fetch_order: Ordering,
                    f: F,
                ) -> Result<$ty, $ty>
                where
                    F: FnMut($ty) -> Option<$ty>,
                {
                    sched::step();
                    self.0.fetch_update(set_order, fetch_order, f)
                }

                /// Consumes the atomic, returning the value.
                pub fn into_inner(self) -> $ty {
                    self.0.into_inner()
                }
            }
        };
    }

    macro_rules! shim_atomic_arith {
        ($name:ident, $ty:ty) => {
            impl $name {
                /// Atomic wrapping add, returning the previous value.
                pub fn fetch_add(&self, v: $ty, order: Ordering) -> $ty {
                    sched::step();
                    self.0.fetch_add(v, order)
                }

                /// Atomic wrapping subtract, returning the previous value.
                pub fn fetch_sub(&self, v: $ty, order: Ordering) -> $ty {
                    sched::step();
                    self.0.fetch_sub(v, order)
                }

                /// Atomic max, returning the previous value.
                pub fn fetch_max(&self, v: $ty, order: Ordering) -> $ty {
                    sched::step();
                    self.0.fetch_max(v, order)
                }

                /// Atomic min, returning the previous value.
                pub fn fetch_min(&self, v: $ty, order: Ordering) -> $ty {
                    sched::step();
                    self.0.fetch_min(v, order)
                }
            }
        };
    }

    shim_atomic!(
        /// `AtomicBool` with schedule injection.
        AtomicBool, AtomicBool, bool
    );
    shim_atomic!(
        /// `AtomicU32` with schedule injection.
        AtomicU32, AtomicU32, u32
    );
    shim_atomic!(
        /// `AtomicU64` with schedule injection.
        AtomicU64, AtomicU64, u64
    );
    shim_atomic!(
        /// `AtomicUsize` with schedule injection.
        AtomicUsize, AtomicUsize, usize
    );
    shim_atomic_arith!(AtomicU32, u32);
    shim_atomic_arith!(AtomicU64, u64);
    shim_atomic_arith!(AtomicUsize, usize);
}

/// Read guard re-exported with the `std` name.
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Write guard.
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;
/// Mutex guard.
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

/// Mutual exclusion with schedule injection and a non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex around `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquires the lock (never errors; poison is cleared).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        sched::step();
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Non-blocking acquisition attempt.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        sched::step();
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Condition variable with schedule injection and a non-poisoning API,
/// mirroring the workspace `parking_lot` vendor's consuming-guard
/// signatures so shimmed code compiles unchanged in both modes.
///
/// The checker runs real OS threads under injected schedules, so the
/// wait genuinely blocks on a `std` condvar; every entry and exit is a
/// scheduling decision point. To surface missed-wakeup bugs as test
/// failures rather than hangs, the modeled wait caps each block at a
/// short real-time slice and returns — a spurious wakeup, which
/// correct predicate loops must already tolerate.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

/// Whether a timed wait returned because the timeout elapsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Upper bound on one modeled blocking slice. Long enough that waits
/// normally end by notification, short enough that a lost-wakeup bug
/// degrades into busy re-polling (and an assertion failure) instead of
/// a hung test run.
const WAIT_SLICE: std::time::Duration = std::time::Duration::from_millis(10);

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Self {
            inner: sync::Condvar::new(),
        }
    }

    /// Releases the lock and blocks until notified (or the modeled
    /// slice expires — a spurious wakeup). Callers must re-check their
    /// predicate in a loop, as with any condvar.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        sched::step();
        let g = match self.inner.wait_timeout(guard, WAIT_SLICE) {
            Ok((g, _)) => g,
            Err(poisoned) => poisoned.into_inner().0,
        };
        sched::step();
        g
    }

    /// Timed wait; the real timeout is capped by the modeled slice, so
    /// `timed_out` reports true only for sub-slice timeouts that
    /// genuinely elapsed.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: std::time::Duration,
    ) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
        sched::step();
        let (g, res) = match self.inner.wait_timeout(guard, timeout.min(WAIT_SLICE)) {
            Ok((g, res)) => (g, res.timed_out() && timeout <= WAIT_SLICE),
            Err(poisoned) => {
                let (g, res) = poisoned.into_inner();
                (g, res.timed_out() && timeout <= WAIT_SLICE)
            }
        };
        sched::step();
        (g, WaitTimeoutResult(res))
    }

    /// Wakes one waiter; a scheduling decision point.
    pub fn notify_one(&self) {
        sched::step();
        self.inner.notify_one();
    }

    /// Wakes every waiter; a scheduling decision point.
    pub fn notify_all(&self) {
        sched::step();
        self.inner.notify_all();
    }
}

/// Reader-writer lock with schedule injection and a non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock around `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Acquires a shared read guard (never errors).
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        sched::step();
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires the exclusive write guard (never errors).
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        sched::step();
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Non-blocking read attempt.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        sched::step();
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Non-blocking write attempt.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        sched::step();
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}
