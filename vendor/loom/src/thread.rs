//! Threading shims, mirroring `loom::thread` (plus `scope`, which
//! upstream loom lacks — this shim runs real OS threads, so scoped
//! borrows work unchanged).

pub use std::thread::{available_parallelism, sleep, Builder, JoinHandle, Scope, ScopedJoinHandle};

use crate::sched;

/// Spawns a thread; a scheduling decision point.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    sched::step();
    std::thread::spawn(move || {
        sched::step();
        f()
    })
}

/// Scoped threads; a scheduling decision point at entry.
pub fn scope<'env, F, T>(f: F) -> T
where
    F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> T,
{
    sched::step();
    std::thread::scope(f)
}

/// Cooperative yield; also a scheduling decision point.
pub fn yield_now() {
    sched::step();
    std::thread::yield_now();
}
