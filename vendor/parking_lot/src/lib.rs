//! Offline vendored subset of `parking_lot`.
//!
//! The build environment has no network access, so this crate provides
//! the two primitives the workspace uses — [`RwLock`] and [`Mutex`] —
//! as thin non-poisoning wrappers over `std::sync`. Like upstream
//! `parking_lot` (and unlike raw `std`), lock acquisition never returns
//! a poison error: a panic while holding a guard leaves the data
//! accessible to later callers. That matters here because the engine
//! catches worker panics and keeps serving queries afterwards.

#![forbid(unsafe_code)]

use std::sync::{self, TryLockError};

/// Guard types re-exported with `parking_lot`'s names.
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Write-side guard.
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;
/// Mutex guard.
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

/// Reader-writer lock with `parking_lot`'s non-poisoning interface.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock around `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Acquires a shared read guard (never errors; poison is cleared).
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires the exclusive write guard (never errors).
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Non-blocking read attempt.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Non-blocking write attempt.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Mutual-exclusion lock with `parking_lot`'s non-poisoning interface.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex around `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquires the lock (never errors; poison is cleared).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Non-blocking lock attempt.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Condition variable with a non-poisoning interface.
///
/// The wait methods consume and return the guard (the `std` shape
/// rather than upstream `parking_lot`'s `&mut` shape — the latter
/// needs `unsafe` to implement over `std`, which this workspace
/// forbids). The loom vendor mirrors this signature exactly so
/// shimmed code is source-compatible in both modes.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

/// Whether a timed wait returned because the timeout elapsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Self {
            inner: sync::Condvar::new(),
        }
    }

    /// Releases the lock and blocks until notified (never errors;
    /// poison is cleared). Spurious wakeups are possible — callers
    /// must re-check their predicate in a loop.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        match self.inner.wait(guard) {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Like [`Condvar::wait`] but also returns after `timeout`.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: std::time::Duration,
    ) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
        match self.inner.wait_timeout(guard, timeout) {
            Ok((g, res)) => (g, WaitTimeoutResult(res.timed_out())),
            Err(poisoned) => {
                let (g, res) = poisoned.into_inner();
                (g, WaitTimeoutResult(res.timed_out()))
            }
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn lock_survives_holder_panic() {
        let l = std::sync::Arc::new(RwLock::new(5));
        let l2 = std::sync::Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("holder dies");
        })
        .join();
        // Not poisoned: subsequent access still works.
        assert_eq!(*l.read(), 5);
    }

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }

    #[test]
    fn condvar_handoff() {
        let shared = std::sync::Arc::new((Mutex::new(false), Condvar::new()));
        let s2 = std::sync::Arc::clone(&shared);
        let waiter = std::thread::spawn(move || {
            let (m, cv) = &*s2;
            let mut g = m.lock();
            while !*g {
                g = cv.wait(g);
            }
        });
        {
            let (m, cv) = &*shared;
            *m.lock() = true;
            cv.notify_all();
        }
        waiter.join().expect("waiter exits");
    }

    #[test]
    fn condvar_wait_timeout_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let g = m.lock();
        let (_g, res) = cv.wait_timeout(g, std::time::Duration::from_millis(5));
        assert!(res.timed_out());
    }
}
