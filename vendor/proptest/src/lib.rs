//! Offline vendored subset of `proptest`.
//!
//! The build environment has no network access and no registry cache,
//! so the workspace vendors the proptest API surface its test suites
//! use: the [`proptest!`] macro, `prop_assert*`/`prop_assume!`,
//! [`prop_oneof!`] (weighted and unweighted), `Just`, ranges and tuples
//! as strategies, `collection::vec`, `option::of`, and a miniature
//! `string_regex` generator.
//!
//! Differences from upstream, deliberately accepted for a test-only
//! stub: no shrinking (a failing case reports its seed instead), and
//! regex support covers only the constructs the suite uses (character
//! classes, groups, alternation, `?`/`*`/`+`/`{m,n}` quantifiers and
//! the `\PC` printable class). Generation is deterministic per test
//! name, so failures reproduce across runs; set `PROPTEST_CASES` to
//! change the case count globally.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Deterministic RNG, config, and the test-case error protocol.

    /// What a generated case can report back to the runner.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case does not apply (`prop_assume!` failed); try another.
        Reject(String),
        /// The property failed.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Builds a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Runner configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }

        /// Effective case count (`PROPTEST_CASES` overrides).
        pub fn effective_cases(&self) -> u32 {
            std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(self.cases)
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// SplitMix64: tiny, fast, and plenty random for test generation.
    #[derive(Debug, Clone)]
    pub struct Rng {
        state: u64,
    }

    impl Rng {
        /// Seeds deterministically from a test name (FNV-1a).
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            Rng { state: h | 1 }
        }

        /// Seeds from an explicit value (failure reproduction).
        pub fn from_seed(seed: u64) -> Self {
            Rng { state: seed | 1 }
        }

        /// Current state, reported on failure so a case can be replayed.
        pub fn state(&self) -> u64 {
            self.state
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            // Modulo bias is irrelevant at test-generation quality.
            self.next_u64() % bound
        }

        /// Uniform `usize` in `[lo, hi)`.
        pub fn range(&mut self, lo: usize, hi: usize) -> usize {
            if hi <= lo {
                return lo;
            }
            lo + self.below((hi - lo) as u64) as usize
        }

        /// Random bool.
        pub fn bool(&mut self) -> bool {
            self.next_u64() & 1 == 1
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::Rng;

    /// A recipe for generating values of one type. Unlike upstream
    /// there is no intermediate value tree: strategies sample directly.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut Rng) -> Self::Value;

        /// Applies `f` to every generated value.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// Type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut Rng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut Rng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut Rng) -> T {
            self.0.clone()
        }
    }

    /// [`Strategy::prop_map`] adapter.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut Rng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Weighted choice between boxed alternatives ([`crate::prop_oneof!`]).
    pub struct OneOf<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> OneOf<T> {
        /// Builds from `(weight, strategy)` arms; weights must not all
        /// be zero.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! needs a positive total weight");
            OneOf { arms, total }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut Rng) -> T {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weights sum checked in new()")
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut Rng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut Rng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo + 1) as u64;
                    (lo + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut Rng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);

    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut Rng) -> String {
            crate::string::generate_from_regex(self, rng)
                .unwrap_or_else(|e| panic!("bad inline regex strategy {self:?}: {e}"))
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` for primitive types.

    use crate::strategy::Strategy;
    use crate::test_runner::Rng;

    /// Types with a canonical "anything" strategy.
    pub trait Arbitrary: Sized {
        /// Generates an arbitrary value.
        fn arbitrary(rng: &mut Rng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut Rng) -> bool {
            rng.bool()
        }
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut Rng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for char {
        fn arbitrary(rng: &mut Rng) -> char {
            // Mostly ASCII with occasional multibyte, like upstream's bias.
            match rng.below(8) {
                0 => char::from_u32(0x80 + rng.below(0x700) as u32).unwrap_or('λ'),
                _ => (0x20 + rng.below(0x5F) as u8) as char,
            }
        }
    }

    /// Strategy wrapper around [`Arbitrary`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut Rng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::Rng;

    /// A size bound for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_excl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_excl: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange { lo: r.start, hi_excl: r.end.max(r.start + 1) }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi_excl: *r.end() + 1 }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(element, 0..16)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut Rng) -> Vec<S::Value> {
            let len = rng.range(self.size.lo, self.size.hi_excl);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::Rng;

    /// Strategy for `Option<S::Value>`.
    pub struct OfStrategy<S>(S);

    /// `proptest::option::of(inner)`: `None` about a quarter of the time.
    pub fn of<S: Strategy>(inner: S) -> OfStrategy<S> {
        OfStrategy(inner)
    }

    impl<S: Strategy> Strategy for OfStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut Rng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

pub mod string {
    //! A miniature regex-driven string generator.

    use crate::strategy::Strategy;
    use crate::test_runner::Rng;

    /// Regex compilation failure.
    #[derive(Debug, Clone)]
    pub struct Error(pub String);

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "regex generator: {}", self.0)
        }
    }

    impl std::error::Error for Error {}

    /// One parsed regex element.
    #[derive(Debug, Clone)]
    enum Node {
        Lit(char),
        /// Inclusive char ranges; a single char is a degenerate range.
        Class(Vec<(char, char)>),
        /// `\PC`: any printable (non-control) char, ASCII-biased.
        Printable,
        /// `(alt | alt | ...)`, each alternative a sequence.
        Group(Vec<Vec<(Node, usize, usize)>>),
    }

    /// Sequence element: node + min/max repetition (inclusive).
    type Unit = (Node, usize, usize);

    struct Parser<'a> {
        chars: std::iter::Peekable<std::str::Chars<'a>>,
    }

    impl Parser<'_> {
        fn parse_alternatives(&mut self, in_group: bool) -> Result<Vec<Vec<Unit>>, Error> {
            let mut alts = vec![Vec::new()];
            loop {
                match self.chars.peek().copied() {
                    None => {
                        if in_group {
                            return Err(Error("unclosed group".into()));
                        }
                        return Ok(alts);
                    }
                    Some(')') if in_group => {
                        self.chars.next();
                        return Ok(alts);
                    }
                    Some(')') => return Err(Error("unmatched ')'".into())),
                    Some('|') => {
                        self.chars.next();
                        alts.push(Vec::new());
                    }
                    Some(_) => {
                        let node = self.parse_node()?;
                        let (lo, hi) = self.parse_quantifier()?;
                        alts.last_mut().expect("nonempty").push((node, lo, hi));
                    }
                }
            }
        }

        fn parse_node(&mut self) -> Result<Node, Error> {
            let c = self.chars.next().expect("peeked");
            match c {
                '[' => self.parse_class(),
                '(' => Ok(Node::Group(self.parse_alternatives(true)?)),
                '.' => Ok(Node::Printable),
                '\\' => match self.chars.next() {
                    Some('P') => {
                        // `\PC` — the only unicode-category escape used.
                        match self.chars.next() {
                            Some('C') => Ok(Node::Printable),
                            other => Err(Error(format!("unsupported \\P{other:?}"))),
                        }
                    }
                    Some('t') => Ok(Node::Lit('\t')),
                    Some('n') => Ok(Node::Lit('\n')),
                    Some('r') => Ok(Node::Lit('\r')),
                    Some(c) => Ok(Node::Lit(c)),
                    None => Err(Error("trailing backslash".into())),
                },
                c => Ok(Node::Lit(c)),
            }
        }

        fn parse_class(&mut self) -> Result<Node, Error> {
            let mut items: Vec<(char, char)> = Vec::new();
            let mut pending: Option<char> = None;
            loop {
                let c = self.chars.next().ok_or(Error("unclosed class".into()))?;
                let c = match c {
                    ']' => {
                        if let Some(p) = pending {
                            items.push((p, p));
                        }
                        if items.is_empty() {
                            return Err(Error("empty class".into()));
                        }
                        return Ok(Node::Class(items));
                    }
                    '\\' => match self.chars.next() {
                        Some('t') => '\t',
                        Some('n') => '\n',
                        Some('r') => '\r',
                        Some(c) => c,
                        None => return Err(Error("trailing backslash in class".into())),
                    },
                    '-' if pending.is_some() => {
                        // Range `a-z`, unless the '-' is last in the class.
                        match self.chars.peek() {
                            Some(']') | None => '-',
                            Some(_) => {
                                let hi = match self.chars.next().expect("peeked") {
                                    '\\' => match self.chars.next() {
                                        Some('t') => '\t',
                                        Some('n') => '\n',
                                        Some('r') => '\r',
                                        Some(c) => c,
                                        None => {
                                            return Err(Error("trailing backslash".into()))
                                        }
                                    },
                                    c => c,
                                };
                                let lo = pending.take().expect("checked");
                                if lo > hi {
                                    return Err(Error(format!("bad range {lo:?}-{hi:?}")));
                                }
                                items.push((lo, hi));
                                continue;
                            }
                        }
                    }
                    c => c,
                };
                if let Some(p) = pending.replace(c) {
                    items.push((p, p));
                }
            }
        }

        fn parse_quantifier(&mut self) -> Result<(usize, usize), Error> {
            match self.chars.peek() {
                Some('?') => {
                    self.chars.next();
                    Ok((0, 1))
                }
                Some('*') => {
                    self.chars.next();
                    Ok((0, 16))
                }
                Some('+') => {
                    self.chars.next();
                    Ok((1, 16))
                }
                Some('{') => {
                    self.chars.next();
                    let mut body = String::new();
                    loop {
                        match self.chars.next() {
                            Some('}') => break,
                            Some(c) => body.push(c),
                            None => return Err(Error("unclosed quantifier".into())),
                        }
                    }
                    let parse = |s: &str| {
                        s.trim()
                            .parse::<usize>()
                            .map_err(|_| Error(format!("bad quantifier {body:?}")))
                    };
                    match body.split_once(',') {
                        None => {
                            let n = parse(&body)?;
                            Ok((n, n))
                        }
                        Some((lo, "")) => {
                            let lo = parse(lo)?;
                            Ok((lo, lo + 16))
                        }
                        Some((lo, hi)) => Ok((parse(lo)?, parse(hi)?)),
                    }
                }
                _ => Ok((1, 1)),
            }
        }
    }

    /// Characters `\PC` / `.` draw from: printable ASCII plus a sample
    /// of multibyte codepoints so fuzzed inputs exercise UTF-8 paths.
    const EXOTIC: &[char] = &['é', 'λ', 'Ж', '中', '😀', '\u{2028}', 'ß', '¿'];

    fn gen_char_printable(rng: &mut Rng) -> char {
        if rng.below(8) == 0 {
            EXOTIC[rng.below(EXOTIC.len() as u64) as usize]
        } else {
            (0x20 + rng.below(0x5F) as u8) as char
        }
    }

    fn gen_class(items: &[(char, char)], rng: &mut Rng) -> char {
        // Weight ranges by their width so e.g. `[ -~é]` is not half 'é'.
        let total: u64 = items
            .iter()
            .map(|(lo, hi)| (*hi as u64) - (*lo as u64) + 1)
            .sum();
        let mut pick = rng.below(total);
        for (lo, hi) in items {
            let w = (*hi as u64) - (*lo as u64) + 1;
            if pick < w {
                return char::from_u32(*lo as u32 + pick as u32).unwrap_or(*lo);
            }
            pick -= w;
        }
        unreachable!("total covers all items")
    }

    fn gen_seq(seq: &[Unit], rng: &mut Rng, out: &mut String) {
        for (node, lo, hi) in seq {
            let reps = rng.range(*lo, *hi + 1);
            for _ in 0..reps {
                match node {
                    Node::Lit(c) => out.push(*c),
                    Node::Class(items) => out.push(gen_class(items, rng)),
                    Node::Printable => out.push(gen_char_printable(rng)),
                    Node::Group(alts) => {
                        let alt = &alts[rng.below(alts.len() as u64) as usize];
                        gen_seq(alt, rng, out);
                    }
                }
            }
        }
    }

    /// A compiled regex string strategy.
    pub struct RegexGeneratorStrategy {
        alts: Vec<Vec<Unit>>,
    }

    impl Strategy for RegexGeneratorStrategy {
        type Value = String;
        fn generate(&self, rng: &mut Rng) -> String {
            let mut out = String::new();
            let alt = &self.alts[rng.below(self.alts.len() as u64) as usize];
            gen_seq(alt, rng, &mut out);
            out
        }
    }

    /// Compiles `pattern` into a string strategy.
    pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
        let mut p = Parser {
            chars: pattern.chars().peekable(),
        };
        Ok(RegexGeneratorStrategy {
            alts: p.parse_alternatives(false)?,
        })
    }

    /// One-shot generation used by the `&str` strategy impl.
    pub fn generate_from_regex(pattern: &str, rng: &mut Rng) -> Result<String, Error> {
        Ok(string_regex(pattern)?.generate(rng))
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude::*`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};

    /// `prop::collection` / `prop::option` style access.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::string;
    }
}

/// Defines property tests: `proptest! { #[test] fn f(x in strat) {...} }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal: expands each test fn in a [`proptest!`] block.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let __cases = __config.effective_cases();
            let mut __rng = $crate::test_runner::Rng::from_name(stringify!($name));
            let mut __passed = 0u32;
            let mut __attempts = 0u32;
            while __passed < __cases {
                __attempts += 1;
                if __attempts > __cases.saturating_mul(20) {
                    panic!(
                        "proptest {}: too many rejected cases ({} attempts, {} passed)",
                        stringify!($name), __attempts, __passed
                    );
                }
                let __case_seed = __rng.state();
                $(let $pat = $crate::strategy::Strategy::generate(&$strat, &mut __rng);)+
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match __outcome {
                    ::std::result::Result::Ok(()) => __passed += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                        panic!(
                            "proptest {} failed at case {} (rng state {:#x}): {}",
                            stringify!($name), __passed, __case_seed, __msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n {}",
            stringify!($left), stringify!($right), __l, __r, format!($($fmt)+)
        );
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), __l
        );
    }};
}

/// Rejects the current case (does not count toward the case total).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Chooses between strategies, optionally weighted:
/// `prop_oneof![a, b]` or `prop_oneof![3 => a, 1 => b]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::Rng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = Rng::from_name("ranges");
        for _ in 0..1000 {
            let v = (3u32..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let s = (-4i64..5).generate(&mut rng);
            assert!((-4..5).contains(&s));
        }
    }

    #[test]
    fn regex_classes_and_groups() {
        let mut rng = Rng::from_name("regex");
        let strat = crate::string::string_regex("[a-z]{2}(-[A-Z]{2})?").unwrap();
        for _ in 0..200 {
            let s = strat.generate(&mut rng);
            assert!(s.len() == 2 || s.len() == 5, "{s:?}");
            assert!(s.chars().take(2).all(|c| c.is_ascii_lowercase()), "{s:?}");
            if s.len() == 5 {
                assert_eq!(s.as_bytes()[2], b'-');
            }
        }
        // `\PC*` (bare &str strategy) yields printable strings.
        let mut seen_nonempty = false;
        for _ in 0..50 {
            let s = "\\PC*".generate(&mut rng);
            seen_nonempty |= !s.is_empty();
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
        }
        assert!(seen_nonempty);
    }

    #[test]
    fn space_tilde_range_class() {
        // `[ -~\t]` — range from space to tilde plus an escape.
        let mut rng = Rng::from_name("class");
        let strat = crate::string::string_regex("[ -~\t]{0,24}").unwrap();
        for _ in 0..200 {
            let s = strat.generate(&mut rng);
            assert!(s.len() <= 24);
            assert!(s.chars().all(|c| (' '..='~').contains(&c) || c == '\t'), "{s:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn macro_end_to_end(
            xs in crate::collection::vec(0u32..100, 1..8),
            flag in any::<bool>(),
            opt in crate::option::of(1usize..4),
        ) {
            prop_assume!(!xs.is_empty());
            prop_assert!(xs.iter().all(|&x| x < 100));
            prop_assert_eq!(xs.len(), xs.iter().filter(|&&x| x < 100).count());
            let _ = flag;
            if let Some(v) = opt { prop_assert!((1..4).contains(&v)); }
        }

        #[test]
        fn oneof_weighted(v in prop_oneof![3 => Just(1u8), 1 => Just(2u8)]) {
            prop_assert!(v == 1 || v == 2);
        }
    }
}
