//! Offline vendored subset of `serde_json`.
//!
//! The build environment has no network access, so the workspace
//! vendors the small JSON surface the benchmark harness uses: an owned
//! [`Value`] tree, an insertion-ordered [`Map`], the [`json!`] macro,
//! and [`to_string_pretty`]. Output is valid JSON; escaping covers the
//! control range, quotes and backslashes.

#![forbid(unsafe_code)]

use std::fmt;

/// A JSON number: integers are kept exact, everything else is `f64`.
#[derive(Debug, Clone, PartialEq)]
pub enum Number {
    /// Unsigned integer.
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Floating point.
    Float(f64),
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::PosInt(v) => write!(f, "{v}"),
            Number::NegInt(v) => write!(f, "{v}"),
            Number::Float(v) if v.is_finite() => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            // JSON has no NaN/Inf; emit null like serde_json's
            // arbitrary-precision fallback would refuse to.
            Number::Float(_) => write!(f, "null"),
        }
    }
}

/// Insertion-ordered string-keyed map (matches `serde_json::Map`'s
/// `preserve_order` behaviour, which the report writer relies on for
/// stable output).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts `value` under `key`, replacing (in place) any previous
    /// entry with the same key; returns the previous value.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries exist.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

/// An owned JSON document tree.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Numbers.
    Number(Number),
    /// Strings.
    String(String),
    /// Arrays.
    Array(Vec<Value>),
    /// Objects.
    Object(Map),
}

macro_rules! from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self { Value::Number(Number::PosInt(v as u64)) }
        }
    )*};
}
macro_rules! from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self {
                if v < 0 { Value::Number(Number::NegInt(v as i64)) }
                else { Value::Number(Number::PosInt(v as u64)) }
            }
        }
    )*};
}
from_unsigned!(u8, u16, u32, u64, usize);
from_signed!(i8, i16, i32, i64, isize);

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Number(Number::Float(v))
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::Number(Number::Float(v as f64))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_string())
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Self {
        Value::String(v.clone())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}

impl From<Map> for Value {
    fn from(v: Map) -> Self {
        Value::Object(v)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map_or(Value::Null, Into::into)
    }
}

/// By-reference conversion used by the [`json!`] macro, mirroring how
/// upstream serializes through `&T`: `json!({"k": owned_field})` must
/// not move the field out of its struct.
pub trait ToJson {
    /// Converts to a [`Value`] without consuming `self`.
    fn to_json(&self) -> Value;
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

macro_rules! to_json_via_from {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value { Value::from(*self) }
        }
    )*};
}
to_json_via_from!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool);

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl ToJson for Map {
    fn to_json(&self) -> Value {
        Value::Object(self.clone())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Value {
        self.as_slice().to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        self.as_ref().map_or(Value::Null, ToJson::to_json)
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_pretty(out: &mut String, value: &Value, indent: usize) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad_in);
                write_pretty(out, item, indent + 1);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            let n = map.len();
            for (i, (k, v)) in map.iter().enumerate() {
                out.push_str(&pad_in);
                escape_into(out, k);
                out.push_str(": ");
                write_pretty(out, v, indent + 1);
                if i + 1 < n {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// Serialization error (this subset cannot actually fail; the type
/// exists for signature compatibility).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON serialization error")
    }
}

impl std::error::Error for Error {}

/// Pretty-prints a [`Value`] with two-space indentation.
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&mut out, value, 0);
    Ok(out)
}

/// Compact single-line serialization.
pub fn to_string(value: &Value) -> Result<String, Error> {
    // Pretty output re-flowed: cheap and good enough for this subset.
    fn write_compact(out: &mut String, value: &Value) {
        match value {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => out.push_str(&n.to_string()),
            Value::String(s) => escape_into(out, s),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_compact(out, item);
                }
                out.push(']');
            }
            Value::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(out, k);
                    out.push(':');
                    write_compact(out, v);
                }
                out.push('}');
            }
        }
    }
    let mut out = String::new();
    write_compact(&mut out, value);
    Ok(out)
}

/// Builds a [`Value`] from JSON-ish syntax: `json!({"k": expr, ...})`,
/// `json!([ ... ])`, or `json!(expr)` for anything `Into<Value>`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($tt:tt)* ]) => {
        $crate::Value::Array($crate::json_items!([] $($tt)*))
    };
    ({ $($tt:tt)* }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $crate::json_entries!(map; $($tt)*);
        $crate::Value::Object(map)
    }};
    ($other:expr) => { $crate::ToJson::to_json(&$other) };
}

/// Internal: munches array items into a `vec![...]` of values.
#[doc(hidden)]
#[macro_export]
macro_rules! json_items {
    ([$($acc:expr),*]) => { ::std::vec![$($acc),*] };
    ([$($acc:expr),*] $item:expr $(, $($rest:tt)*)?) => {
        $crate::json_items!([$($acc,)* $crate::json!($item)] $($($rest)*)?)
    };
}

/// Internal: munches `"key": value` object entries. Values are munched
/// as token trees until the top-level comma, so exprs containing commas
/// inside parens/closures work, as do nested `{...}`/`[...]` literals.
#[doc(hidden)]
#[macro_export]
macro_rules! json_entries {
    ($map:ident;) => {};
    ($map:ident; $key:literal : $value:tt , $($rest:tt)*) => {
        $map.insert($key.to_string(), $crate::json!($value));
        $crate::json_entries!($map; $($rest)*);
    };
    ($map:ident; $key:literal : $value:tt) => {
        $map.insert($key.to_string(), $crate::json!($value));
    };
    // Value made of multiple token trees (e.g. `a.b(c, d)`, `x as u64`):
    // accumulate tts one at a time into a parenthesized expr.
    ($map:ident; $key:literal : $($value:tt)+) => {
        $crate::json_entries_long!($map; $key; () $($value)+);
    };
}

/// Internal: accumulates a multi-tt value up to the top-level comma.
#[doc(hidden)]
#[macro_export]
macro_rules! json_entries_long {
    ($map:ident; $key:literal; ($($acc:tt)*)) => {
        $map.insert($key.to_string(), $crate::ToJson::to_json(&($($acc)*)));
    };
    ($map:ident; $key:literal; ($($acc:tt)*) , $($rest:tt)*) => {
        $map.insert($key.to_string(), $crate::ToJson::to_json(&($($acc)*)));
        $crate::json_entries!($map; $($rest)*);
    };
    ($map:ident; $key:literal; ($($acc:tt)*) $next:tt $($rest:tt)*) => {
        $crate::json_entries_long!($map; $key; ($($acc)* $next) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_and_array_literals() {
        let rows = vec![json!({"a": 1, "b": 2.5}), json!({"a": 2, "b": 3.0})];
        let v = json!({
            "name": "test", "count": 3usize, "ok": true,
            "maybe": Option::<f64>::None,
            "rows": rows,
            "nested": [1, 2, 3],
        });
        let text = to_string(&v).unwrap();
        assert!(text.starts_with("{\"name\":\"test\""), "{text}");
        assert!(text.contains("\"maybe\":null"), "{text}");
        assert!(text.contains("\"nested\":[1,2,3]"), "{text}");
    }

    #[test]
    fn multi_tt_values() {
        let v = json!({
            "cores": std::thread::available_parallelism().map_or(1, |n| n.get()),
            "sum": 1 + 2,
        });
        let Value::Object(m) = &v else { panic!() };
        assert_eq!(m.get("sum"), Some(&Value::Number(Number::PosInt(3))));
    }

    #[test]
    fn pretty_output_is_stable() {
        let v = json!({"k": [1], "s": "a\"b\n"});
        let text = to_string_pretty(&v).unwrap();
        assert_eq!(
            text,
            "{\n  \"k\": [\n    1\n  ],\n  \"s\": \"a\\\"b\\n\"\n}"
        );
    }

    #[test]
    fn map_insert_replaces_in_place() {
        let mut m = Map::new();
        m.insert("a".into(), json!(1));
        m.insert("b".into(), json!(2));
        assert_eq!(m.insert("a".into(), json!(3)), Some(json!(1)));
        let keys: Vec<_> = m.iter().map(|(k, _)| k.clone()).collect();
        assert_eq!(keys, vec!["a", "b"]);
    }
}
